#include "fleet/fleet_scenario.hh"

#include <cctype>
#include <cmath>
#include <cstdio>
#include <stdexcept>

#include "controllers/factory.hh"
#include "device/device_profiles.hh"
#include "sim/fault.hh"

namespace iocost::fleet {

namespace {

[[noreturn]] void
bad(const std::string &token, const std::string &why)
{
    throw std::invalid_argument("scenario: bad token \"" + token +
                                "\": " + why);
}

/**
 * SplitMix64 finalizer — the standard seed-decorrelation mix (the
 * same one sim::Rng uses for state expansion). Every per-host
 * derivation routes through this so host properties are uniform and
 * uncorrelated but purely functional in (seed, host).
 */
uint64_t
mix64(uint64_t x)
{
    x += 0x9E3779B97F4A7C15ull;
    x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9ull;
    x = (x ^ (x >> 27)) * 0x94D049BB133111EBull;
    return x ^ (x >> 31);
}

/** Uniform double in [0, 1) from a mixed draw. */
double
unitDraw(uint64_t seed, uint64_t salt, unsigned host)
{
    const uint64_t r = mix64(mix64(seed ^ salt) + host);
    return static_cast<double>(r >> 11) * 0x1.0p-53;
}

uint64_t
parseU64(const std::string &token, const std::string &text)
{
    if (text.empty())
        bad(token, "empty value");
    size_t pos = 0;
    uint64_t v = 0;
    try {
        v = std::stoull(text, &pos);
    } catch (const std::exception &) {
        bad(token, "unparsable number \"" + text + "\"");
    }
    if (pos != text.size())
        bad(token, "trailing junk after \"" + text + "\"");
    return v;
}

double
parseShare(const std::string &token, const std::string &text)
{
    if (text.empty())
        bad(token, "empty share");
    size_t pos = 0;
    double v = 0.0;
    try {
        v = std::stod(text, &pos);
    } catch (const std::exception &) {
        bad(token, "unparsable share \"" + text + "\"");
    }
    if (pos != text.size())
        bad(token, "trailing junk after \"" + text + "\"");
    if (v <= 0.0)
        bad(token, "share must be > 0");
    return v;
}

/** Non-negative time with optional ns/us/ms/s suffix (default ms). */
sim::Time
parseTimeValue(const std::string &token, const std::string &text)
{
    if (text.empty())
        bad(token, "empty time value");
    size_t pos = 0;
    double value = 0.0;
    try {
        value = std::stod(text, &pos);
    } catch (const std::exception &) {
        bad(token, "unparsable time \"" + text + "\"");
    }
    if (value < 0.0)
        bad(token, "negative time \"" + text + "\"");
    const std::string unit = text.substr(pos);
    double scale = 0.0;
    if (unit.empty() || unit == "ms")
        scale = static_cast<double>(sim::kMsec);
    else if (unit == "ns")
        scale = static_cast<double>(sim::kNsec);
    else if (unit == "us")
        scale = static_cast<double>(sim::kUsec);
    else if (unit == "s")
        scale = static_cast<double>(sim::kSec);
    else
        bad(token, "unknown time unit \"" + unit + "\"");
    return static_cast<sim::Time>(value * scale);
}

/** Byte count with optional K/M/G suffix (binary). */
uint64_t
parseBytes(const std::string &token, const std::string &text)
{
    if (text.empty())
        bad(token, "empty byte value");
    size_t pos = 0;
    double value = 0.0;
    try {
        value = std::stod(text, &pos);
    } catch (const std::exception &) {
        bad(token, "unparsable bytes \"" + text + "\"");
    }
    if (value < 0.0)
        bad(token, "negative bytes \"" + text + "\"");
    const std::string unit = text.substr(pos);
    double scale = 1.0;
    if (unit.empty())
        scale = 1.0;
    else if (unit == "K" || unit == "k")
        scale = 1024.0;
    else if (unit == "M" || unit == "m")
        scale = 1024.0 * 1024.0;
    else if (unit == "G" || unit == "g")
        scale = 1024.0 * 1024.0 * 1024.0;
    else
        bad(token, "unknown byte unit \"" + unit + "\"");
    return static_cast<uint64_t>(value * scale);
}

device::SsdSpec
deviceByName(const std::string &token, const std::string &name)
{
    if (name.size() == 1 && name[0] >= 'A' && name[0] <= 'H')
        return device::fleetSsd(name[0]);
    if (name == "oldgen")
        return device::oldGenSsd();
    if (name == "newgen")
        return device::newGenSsd();
    if (name == "enterprise")
        return device::enterpriseSsd();
    bad(token, "unknown device \"" + name +
                   "\" (A..H, oldgen, newgen, enterprise)");
}

WorkloadKind
workloadByName(const std::string &token, const std::string &name)
{
    if (name == "mixed")
        return WorkloadKind::Mixed;
    if (name == "readheavy")
        return WorkloadKind::ReadHeavy;
    if (name == "writeheavy")
        return WorkloadKind::WriteHeavy;
    if (name == "bursty")
        return WorkloadKind::Bursty;
    if (name == "buffered")
        return WorkloadKind::Buffered;
    bad(token, "unknown workload \"" + name +
                   "\" (mixed, readheavy, writeheavy, bursty, "
                   "buffered)");
}

/** Device spec back to its scenario token. */
std::string
deviceToken(const device::SsdSpec &spec)
{
    const std::string &n = spec.name;
    if (n.rfind("fleet-ssd-", 0) == 0 && n.size() == 11)
        return std::string(1, n[10]);
    if (n == device::oldGenSsd().name)
        return "oldgen";
    if (n == device::newGenSsd().name)
        return "newgen";
    if (n == device::enterpriseSsd().name)
        return "enterprise";
    return n; // parse() will reject; canonical() of parsed specs
              // never reaches here.
}

/** Split "a,b,c" on commas (no empty entries allowed). */
std::vector<std::string>
splitList(const std::string &token, const std::string &text)
{
    std::vector<std::string> out;
    size_t pos = 0;
    while (pos <= text.size()) {
        const size_t comma = text.find(',', pos);
        const std::string part =
            text.substr(pos, comma == std::string::npos
                                 ? std::string::npos
                                 : comma - pos);
        if (part.empty())
            bad(token, "empty list entry");
        out.push_back(part);
        if (comma == std::string::npos)
            break;
        pos = comma + 1;
    }
    return out;
}

double
normalizedTotal(const std::string &what, std::vector<double> shares)
{
    double total = 0.0;
    for (double s : shares)
        total += s;
    if (total <= 0.0) {
        throw std::invalid_argument("scenario: " + what +
                                    " shares sum to zero");
    }
    return total;
}

std::string
fmtTime(sim::Time t)
{
    char buf[48];
    if (t % sim::kSec == 0) {
        std::snprintf(buf, sizeof(buf), "%llds",
                      static_cast<long long>(t / sim::kSec));
    } else if (t % sim::kMsec == 0) {
        std::snprintf(buf, sizeof(buf), "%lldms",
                      static_cast<long long>(t / sim::kMsec));
    } else if (t % sim::kUsec == 0) {
        std::snprintf(buf, sizeof(buf), "%lldus",
                      static_cast<long long>(t / sim::kUsec));
    } else {
        std::snprintf(buf, sizeof(buf), "%lldns",
                      static_cast<long long>(t));
    }
    return buf;
}

} // namespace

const char *
workloadKindName(WorkloadKind kind)
{
    switch (kind) {
    case WorkloadKind::Mixed:
        return "mixed";
    case WorkloadKind::ReadHeavy:
        return "readheavy";
    case WorkloadKind::WriteHeavy:
        return "writeheavy";
    case WorkloadKind::Bursty:
        return "bursty";
    case WorkloadKind::Buffered:
        return "buffered";
    }
    return "?";
}

FleetScenario
FleetScenario::parse(const std::string &spec)
{
    FleetScenario sc;
    sc.devices.clear();
    sc.workloads.clear();
    sc.stages.clear();

    // Strip comments, then split on whitespace.
    std::string clean;
    clean.reserve(spec.size());
    bool in_comment = false;
    for (char c : spec) {
        if (c == '#')
            in_comment = true;
        if (c == '\n')
            in_comment = false;
        clean.push_back(in_comment ? ' ' : c);
    }

    std::vector<std::string> tokens;
    std::string cur;
    for (char c : clean) {
        if (std::isspace(static_cast<unsigned char>(c))) {
            if (!cur.empty())
                tokens.push_back(std::move(cur));
            cur.clear();
        } else {
            cur.push_back(c);
        }
    }
    if (!cur.empty())
        tokens.push_back(std::move(cur));

    for (const std::string &token : tokens) {
        const size_t eq = token.find('=');
        if (eq == std::string::npos)
            bad(token, "expected key=value");
        const std::string key = token.substr(0, eq);
        const std::string value = token.substr(eq + 1);

        if (key == "hosts") {
            sc.hosts =
                static_cast<unsigned>(parseU64(token, value));
        } else if (key == "days") {
            sc.days = static_cast<unsigned>(parseU64(token, value));
        } else if (key == "seed") {
            sc.seed = parseU64(token, value);
        } else if (key == "shards") {
            sc.shards =
                static_cast<unsigned>(parseU64(token, value));
        } else if (key == "migration") {
            for (const std::string &part :
                 splitList(token, value)) {
                const size_t dots = part.find("..");
                if (dots == std::string::npos)
                    bad(token, "expected START..END[:PCT]");
                const size_t colon = part.find(':', dots + 2);
                MigrationStage st;
                st.startDay = static_cast<unsigned>(
                    parseU64(token, part.substr(0, dots)));
                const size_t end_len =
                    (colon == std::string::npos ? part.size()
                                                : colon) -
                    (dots + 2);
                st.endDay = static_cast<unsigned>(parseU64(
                    token, part.substr(dots + 2, end_len)));
                if (st.endDay < st.startDay)
                    bad(token, "stage end before start");
                st.fraction =
                    colon == std::string::npos
                        ? 1.0
                        : parseShare(token,
                                     part.substr(colon + 1)) /
                              100.0;
                sc.stages.push_back(st);
            }
        } else if (key == "devices") {
            for (const std::string &part :
                 splitList(token, value)) {
                const size_t colon = part.find(':');
                DeviceShare ds;
                ds.spec = deviceByName(
                    token, part.substr(0, colon));
                ds.share = colon == std::string::npos
                               ? 1.0
                               : parseShare(
                                     token, part.substr(colon + 1));
                sc.devices.push_back(std::move(ds));
            }
        } else if (key == "workloads") {
            for (const std::string &part :
                 splitList(token, value)) {
                const size_t colon = part.find(':');
                WorkloadShare ws;
                ws.kind = workloadByName(
                    token, part.substr(0, colon));
                ws.share = colon == std::string::npos
                               ? 1.0
                               : parseShare(
                                     token, part.substr(colon + 1));
                sc.workloads.push_back(ws);
            }
        } else if (key == "faults") {
            // Validate eagerly so a bad plan fails at parse time,
            // not from inside the first worker thread.
            (void)sim::FaultPlan::parse(value);
            sc.faults = value;
        } else if (key == "sweep") {
            // Same eager-validation discipline: every entry must be
            // a parseable controller spec before any worker runs.
            sc.sweep = controllers::splitSpecList(value);
            if (sc.sweep.empty())
                bad(token, "empty sweep list");
            for (const std::string &entry : sc.sweep) {
                if (!controllers::parseControllerSpec(entry))
                    bad(token, "bad controller spec \"" + entry +
                                   "\"");
            }
        } else if (key == "slice") {
            sc.slice = parseTimeValue(token, value);
        } else if (key == "warmup") {
            sc.warmup = parseTimeValue(token, value);
        } else if (key == "fetch") {
            sc.fetchBytes = parseBytes(token, value);
        } else if (key == "fetch_deadline") {
            sc.fetchDeadline = parseTimeValue(token, value);
        } else if (key == "cleanup") {
            sc.cleanupOps =
                static_cast<unsigned>(parseU64(token, value));
        } else if (key == "cleanup_io") {
            sc.cleanupIoBytes = static_cast<uint32_t>(
                parseBytes(token, value));
        } else if (key == "cleanup_deadline") {
            sc.cleanupDeadline = parseTimeValue(token, value);
        } else if (key == "pagecache") {
            sc.pagecacheBytes = parseBytes(token, value);
        } else if (key == "dirty_ratio") {
            sc.dirtyRatioPct = parseShare(token, value);
            if (sc.dirtyRatioPct > 100.0)
                bad(token, "dirty_ratio is a percent (<= 100)");
        } else {
            bad(token, "unknown key \"" + key + "\"");
        }
    }

    if (sc.hosts == 0)
        throw std::invalid_argument("scenario: hosts must be > 0");
    if (sc.days == 0)
        throw std::invalid_argument("scenario: days must be > 0");

    // Defaults that depend on other keys resolve after the full
    // token pass.
    if (sc.stages.empty()) {
        sc.stages.push_back(MigrationStage{
            sc.days / 4, std::max(sc.days * 3 / 4, sc.days / 4),
            1.0});
    }
    double coverage = 0.0;
    for (const MigrationStage &st : sc.stages) {
        if (st.endDay > sc.days) {
            throw std::invalid_argument(
                "scenario: migration stage ends past days");
        }
        coverage += st.fraction;
    }
    // Stage percentages are absolute fleet coverage (the remainder
    // stays on iolatency forever), so together they cannot exceed
    // the fleet.
    if (coverage > 1.0 + 1e-9) {
        throw std::invalid_argument(
            "scenario: migration stages cover more than 100% "
            "of the fleet");
    }
    if (sc.devices.empty()) {
        for (char c = 'A'; c <= 'H'; ++c)
            sc.devices.push_back(
                DeviceShare{device::fleetSsd(c), 1.0});
    }
    if (sc.workloads.empty())
        sc.workloads.push_back(
            WorkloadShare{WorkloadKind::Mixed, 1.0});
    // Buffered workloads need a cache; default one in when the mix
    // asks for buffered IO without sizing it explicitly.
    if (sc.pagecacheBytes == 0) {
        for (const WorkloadShare &w : sc.workloads) {
            if (w.kind == WorkloadKind::Buffered) {
                sc.pagecacheBytes = 512ull << 20;
                break;
            }
        }
    }
    return sc;
}

std::string
FleetScenario::canonical() const
{
    char buf[128];
    std::string out;
    std::snprintf(buf, sizeof(buf),
                  "hosts=%u days=%u seed=%llu", hosts, days,
                  static_cast<unsigned long long>(seed));
    out += buf;
    if (shards != 0) {
        std::snprintf(buf, sizeof(buf), " shards=%u", shards);
        out += buf;
    }

    out += " migration=";
    for (size_t i = 0; i < stages.size(); ++i) {
        const MigrationStage &st = stages[i];
        // Absolute coverage percentages, NOT normalized: a 50%
        // stage leaves half the fleet on iolatency.
        std::snprintf(buf, sizeof(buf), "%s%u..%u:%.6g",
                      i ? "," : "", st.startDay, st.endDay,
                      100.0 * st.fraction);
        out += buf;
    }

    out += " devices=";
    double dev_total = 0.0;
    for (const DeviceShare &d : devices)
        dev_total += d.share;
    for (size_t i = 0; i < devices.size(); ++i) {
        std::snprintf(buf, sizeof(buf), "%s%s:%.6g", i ? "," : "",
                      deviceToken(devices[i].spec).c_str(),
                      100.0 * devices[i].share / dev_total);
        out += buf;
    }

    out += " workloads=";
    double wl_total = 0.0;
    for (const WorkloadShare &w : workloads)
        wl_total += w.share;
    for (size_t i = 0; i < workloads.size(); ++i) {
        std::snprintf(buf, sizeof(buf), "%s%s:%.6g", i ? "," : "",
                      workloadKindName(workloads[i].kind),
                      100.0 * workloads[i].share / wl_total);
        out += buf;
    }

    if (!faults.empty())
        out += " faults=" + faults;

    // Emitted only when set: legacy (pre-pagecache) canonical
    // strings — and the what-if cache hashes derived from them —
    // must not change.
    if (pagecacheBytes != 0) {
        std::snprintf(buf, sizeof(buf), " pagecache=%llu",
                      static_cast<unsigned long long>(
                          pagecacheBytes));
        out += buf;
    }
    if (dirtyRatioPct != 0.0) {
        std::snprintf(buf, sizeof(buf), " dirty_ratio=%.6g",
                      dirtyRatioPct);
        out += buf;
    }

    if (!sweep.empty()) {
        // Spaces inside an entry become commas so the whole sweep
        // stays one key=value token; splitSpecList undoes this.
        out += " sweep=";
        for (size_t i = 0; i < sweep.size(); ++i) {
            std::string entry = sweep[i];
            for (char &c : entry) {
                if (c == ' ')
                    c = ',';
            }
            if (i)
                out += ';';
            out += entry;
        }
    }

    out += " slice=" + fmtTime(slice);
    out += " warmup=" + fmtTime(warmup);
    std::snprintf(buf, sizeof(buf),
                  " fetch=%llu fetch_deadline=%s cleanup=%u "
                  "cleanup_io=%u cleanup_deadline=%s",
                  static_cast<unsigned long long>(fetchBytes),
                  fmtTime(fetchDeadline).c_str(), cleanupOps,
                  cleanupIoBytes,
                  fmtTime(cleanupDeadline).c_str());
    out += buf;
    return out;
}

unsigned
FleetScenario::migrationDay(unsigned host) const
{
    if (stages.empty() || hosts == 0)
        return days; // never migrates

    // Stages own contiguous host-index ranges in spec order; within
    // a stage, hosts migrate staggered across [startDay, endDay).
    // Fractions are absolute fleet coverage — hosts past the last
    // stage's range never migrate (partial-rollout scenarios).
    double cum = 0.0;
    unsigned lo = 0;
    for (size_t i = 0; i < stages.size(); ++i) {
        cum += stages[i].fraction;
        unsigned hi = static_cast<unsigned>(
            std::llround(cum * static_cast<double>(hosts)));
        if (hi > hosts)
            hi = hosts;
        if (host >= lo && host < hi) {
            const MigrationStage &st = stages[i];
            const unsigned span = st.endDay - st.startDay;
            if (span == 0 || hi == lo)
                return st.startDay;
            return st.startDay + (host - lo) * span / (hi - lo);
        }
        lo = hi;
    }
    return days; // rounding gap: never migrates
}

unsigned
FleetScenario::deviceIndexFor(unsigned host) const
{
    if (deviceAssign == DeviceAssign::LegacyParity)
        return host % static_cast<unsigned>(
                          std::max<size_t>(1, devices.size()));
    if (devices.size() <= 1)
        return 0;
    std::vector<double> shares;
    shares.reserve(devices.size());
    for (const DeviceShare &d : devices)
        shares.push_back(d.share);
    const double total = normalizedTotal("devices", shares);
    const double u = unitDraw(seed, 0xD381C0DEull, host);
    double cum = 0.0;
    for (size_t i = 0; i + 1 < devices.size(); ++i) {
        cum += devices[i].share / total;
        if (u < cum)
            return static_cast<unsigned>(i);
    }
    return static_cast<unsigned>(devices.size() - 1);
}

WorkloadKind
FleetScenario::workloadFor(unsigned host) const
{
    if (workloads.empty())
        return WorkloadKind::Mixed;
    if (workloads.size() == 1)
        return workloads[0].kind;
    std::vector<double> shares;
    shares.reserve(workloads.size());
    for (const WorkloadShare &w : workloads)
        shares.push_back(w.share);
    const double total = normalizedTotal("workloads", shares);
    const double u = unitDraw(seed, 0x3017C10ADull, host);
    double cum = 0.0;
    for (size_t i = 0; i + 1 < workloads.size(); ++i) {
        cum += workloads[i].share / total;
        if (u < cum)
            return workloads[i].kind;
    }
    return workloads.back().kind;
}

uint64_t
FleetScenario::hostDaySeed(unsigned day, unsigned host) const
{
    if (seedMode == SeedMode::Legacy)
        return seed * 1000003ull + day * 10007ull + host;
    // Three chained finalizer rounds decorrelate (seed, day, host)
    // without the additive collisions the legacy polynomial hits
    // past 10k hosts (day*10007 + host aliases across days).
    return mix64(mix64(mix64(seed) ^ day) ^
                 (0x9E3779B97F4A7C15ull + host));
}

} // namespace iocost::fleet
