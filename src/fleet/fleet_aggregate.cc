#include "fleet/fleet_aggregate.hh"

#include <cassert>
#include <cctype>
#include <cstdlib>
#include <cstring>

namespace iocost::fleet {

ShardAccumulator::ShardAccumulator(unsigned days)
{
    days_.assign(days, DayCounters{});
    // One point per day in each failure series, plus matching swap
    // space, so finalizeSeries()/mergeFrom() never allocate.
    fetchFailSeries_.reserve(days);
    cleanupFailSeries_.reserve(days);
    scratch_.reserve(days);
}

void
ShardAccumulator::fold(unsigned day, bool on_iocost,
                       const HostDayOutcome &outcome)
{
    assert(day < days_.size());
    assert(!finalized_);
    DayCounters &d = days_[day];
    d.migrated += on_iocost ? 1u : 0u;
    d.fetchAttempts += 1;
    d.cleanupAttempts += 1;
    const unsigned ctl = on_iocost ? kCtlIoCost : kCtlIoLatency;
    if (outcome.fetchFailed)
        d.fetchFailures += 1;
    else
        fetchTime_[ctl].record(outcome.fetchTime);
    if (outcome.cleanupFailed)
        d.cleanupFailures += 1;
    else
        cleanupTime_[ctl].record(outcome.cleanupTime);
}

void
ShardAccumulator::finalizeSeries()
{
    assert(!finalized_);
    // Emit one point per day — including zero days — so every shard
    // produces the same timestamp set and mergeSum stays a pure
    // pointwise sum (size never grows past `days`).
    for (unsigned d = 0; d < days_.size(); ++d) {
        fetchFailSeries_.record(d, days_[d].fetchFailures);
        cleanupFailSeries_.record(d, days_[d].cleanupFailures);
    }
    finalized_ = true;
}

void
ShardAccumulator::mergeFrom(const ShardAccumulator &other)
{
    assert(finalized_ && other.finalized_);
    assert(days_.size() == other.days_.size());
    for (size_t d = 0; d < days_.size(); ++d) {
        days_[d].migrated += other.days_[d].migrated;
        days_[d].fetchAttempts += other.days_[d].fetchAttempts;
        days_[d].fetchFailures += other.days_[d].fetchFailures;
        days_[d].cleanupAttempts += other.days_[d].cleanupAttempts;
        days_[d].cleanupFailures += other.days_[d].cleanupFailures;
    }
    for (unsigned c = 0; c < 2; ++c) {
        fetchTime_[c].merge(other.fetchTime_[c]);
        cleanupTime_[c].merge(other.cleanupTime_[c]);
    }
    fetchFailSeries_.mergeSum(other.fetchFailSeries_, scratch_);
    cleanupFailSeries_.mergeSum(other.cleanupFailSeries_, scratch_);
}

FleetAggregate
ShardAccumulator::finish(unsigned hosts, unsigned shards,
                         unsigned jobs) const
{
    assert(finalized_);
    FleetAggregate agg;
    agg.hosts = hosts;
    agg.shards = shards;
    agg.jobs = jobs;
    agg.days.resize(days_.size());
    for (size_t d = 0; d < days_.size(); ++d) {
        FleetDayResult &r = agg.days[d];
        r.day = static_cast<unsigned>(d);
        r.fractionOnIoCost =
            hosts ? static_cast<double>(days_[d].migrated) / hosts
                  : 0.0;
        r.fetchAttempts = days_[d].fetchAttempts;
        r.fetchFailures = days_[d].fetchFailures;
        r.cleanupAttempts = days_[d].cleanupAttempts;
        r.cleanupFailures = days_[d].cleanupFailures;
        agg.hostDays += days_[d].fetchAttempts;
    }
    for (unsigned c = 0; c < 2; ++c) {
        agg.fetchTime[c].merge(fetchTime_[c]);
        agg.cleanupTime[c].merge(cleanupTime_[c]);
    }
    std::vector<stat::SeriesPoint> scratch;
    agg.fetchFailures.mergeSum(fetchFailSeries_, scratch);
    agg.cleanupFailures.mergeSum(cleanupFailSeries_, scratch);
    return agg;
}

AggregateView
AggregateView::from(const FleetAggregate &agg)
{
    AggregateView v;
    v.hosts = agg.hosts;
    v.days = static_cast<unsigned>(agg.days.size());
    v.hostDays = agg.hostDays;
    v.shards = agg.shards;
    v.jobs = agg.jobs;
    for (unsigned c = 0; c < 2; ++c) {
        const stat::Histogram &f = agg.fetchTime[c];
        const stat::Histogram &cl = agg.cleanupTime[c];
        v.ctl[c].fetchCount = f.count();
        v.ctl[c].fetchP50Ms = f.quantile(0.50) / 1e6;
        v.ctl[c].fetchP99Ms = f.quantile(0.99) / 1e6;
        v.ctl[c].fetchMeanMs = f.mean() / 1e6;
        v.ctl[c].cleanupCount = cl.count();
        v.ctl[c].cleanupP50Ms = cl.quantile(0.50) / 1e6;
        v.ctl[c].cleanupP99Ms = cl.quantile(0.99) / 1e6;
        v.ctl[c].cleanupMeanMs = cl.mean() / 1e6;
    }
    v.perDay = agg.days;
    return v;
}

namespace {

const char *const kCtlNames[2] = {"iolatency", "iocost"};

void
writeCtl(const AggregateView::CtlSummary &c, FILE *out)
{
    fprintf(out,
            "{\"fetch_count\": %llu, \"fetch_p50_ms\": %.10g, "
            "\"fetch_p99_ms\": %.10g, \"fetch_mean_ms\": %.10g, "
            "\"cleanup_count\": %llu, \"cleanup_p50_ms\": %.10g, "
            "\"cleanup_p99_ms\": %.10g, \"cleanup_mean_ms\": %.10g}",
            static_cast<unsigned long long>(c.fetchCount),
            c.fetchP50Ms, c.fetchP99Ms, c.fetchMeanMs,
            static_cast<unsigned long long>(c.cleanupCount),
            c.cleanupP50Ms, c.cleanupP99Ms, c.cleanupMeanMs);
}

} // namespace

void
writeAggregateJson(const AggregateView &view, FILE *out)
{
    fprintf(out,
            "{\n"
            "  \"fleet_aggregate\": 1,\n"
            "  \"hosts\": %u,\n"
            "  \"days\": %u,\n"
            "  \"host_days\": %llu,\n"
            "  \"shards\": %u,\n"
            "  \"jobs\": %u,\n",
            view.hosts, view.days,
            static_cast<unsigned long long>(view.hostDays),
            view.shards, view.jobs);
    fprintf(out, "  \"summary\": {\n");
    for (unsigned c = 0; c < 2; ++c) {
        fprintf(out, "    \"%s\": ", kCtlNames[c]);
        writeCtl(view.ctl[c], out);
        fprintf(out, c == 0 ? ",\n" : "\n");
    }
    fprintf(out, "  },\n  \"per_day\": [\n");
    for (size_t i = 0; i < view.perDay.size(); ++i) {
        const FleetDayResult &d = view.perDay[i];
        fprintf(out,
                "    {\"day\": %u, \"on_iocost\": %.10g, "
                "\"fetch_attempts\": %u, \"fetch_failures\": %u, "
                "\"cleanup_attempts\": %u, "
                "\"cleanup_failures\": %u}%s\n",
                d.day, d.fractionOnIoCost, d.fetchAttempts,
                d.fetchFailures, d.cleanupAttempts,
                d.cleanupFailures,
                i + 1 < view.perDay.size() ? "," : "");
    }
    fprintf(out, "  ]\n}\n");
}

namespace {

/**
 * Find `"key":` at/after @p from and return the offset of the first
 * character of the value, or npos. Only has to understand the output
 * of writeAggregateJson (no escaped quotes inside keys).
 */
size_t
valueOf(const std::string &text, const char *key, size_t from)
{
    const std::string needle = std::string("\"") + key + "\"";
    size_t pos = text.find(needle, from);
    if (pos == std::string::npos)
        return std::string::npos;
    pos = text.find(':', pos + needle.size());
    if (pos == std::string::npos)
        return std::string::npos;
    ++pos;
    while (pos < text.size() &&
           std::isspace(static_cast<unsigned char>(text[pos])))
        ++pos;
    return pos;
}

double
numOf(const std::string &text, const char *key, size_t from,
      double fallback = 0.0)
{
    const size_t pos = valueOf(text, key, from);
    if (pos == std::string::npos)
        return fallback;
    return std::strtod(text.c_str() + pos, nullptr);
}

AggregateView::CtlSummary
readCtl(const std::string &text, size_t from)
{
    AggregateView::CtlSummary c;
    c.fetchCount =
        static_cast<uint64_t>(numOf(text, "fetch_count", from));
    c.fetchP50Ms = numOf(text, "fetch_p50_ms", from);
    c.fetchP99Ms = numOf(text, "fetch_p99_ms", from);
    c.fetchMeanMs = numOf(text, "fetch_mean_ms", from);
    c.cleanupCount =
        static_cast<uint64_t>(numOf(text, "cleanup_count", from));
    c.cleanupP50Ms = numOf(text, "cleanup_p50_ms", from);
    c.cleanupP99Ms = numOf(text, "cleanup_p99_ms", from);
    c.cleanupMeanMs = numOf(text, "cleanup_mean_ms", from);
    return c;
}

} // namespace

std::optional<AggregateView>
readAggregateJson(const std::string &text)
{
    if (text.find("\"fleet_aggregate\"") == std::string::npos)
        return std::nullopt;
    AggregateView v;
    v.hosts = static_cast<unsigned>(numOf(text, "hosts", 0));
    v.days = static_cast<unsigned>(numOf(text, "days", 0));
    v.hostDays = static_cast<uint64_t>(numOf(text, "host_days", 0));
    v.shards = static_cast<unsigned>(numOf(text, "shards", 0));
    v.jobs = static_cast<unsigned>(numOf(text, "jobs", 0));
    for (unsigned c = 0; c < 2; ++c) {
        const size_t pos = valueOf(text, kCtlNames[c], 0);
        if (pos != std::string::npos)
            v.ctl[c] = readCtl(text, pos);
    }
    size_t pos = valueOf(text, "per_day", 0);
    if (pos != std::string::npos) {
        // Objects inside the array are one-per-line; walk them until
        // the closing bracket.
        while (true) {
            const size_t obj = text.find('{', pos);
            const size_t end = text.find(']', pos);
            if (obj == std::string::npos ||
                (end != std::string::npos && end < obj))
                break;
            FleetDayResult d;
            d.day = static_cast<unsigned>(numOf(text, "day", obj));
            d.fractionOnIoCost = numOf(text, "on_iocost", obj);
            d.fetchAttempts = static_cast<unsigned>(
                numOf(text, "fetch_attempts", obj));
            d.fetchFailures = static_cast<unsigned>(
                numOf(text, "fetch_failures", obj));
            d.cleanupAttempts = static_cast<unsigned>(
                numOf(text, "cleanup_attempts", obj));
            d.cleanupFailures = static_cast<unsigned>(
                numOf(text, "cleanup_failures", obj));
            v.perDay.push_back(d);
            pos = text.find('}', obj);
            if (pos == std::string::npos)
                break;
        }
    }
    return v;
}

void
writeSweepJson(const SweepView &view, FILE *out)
{
    fprintf(out, "{\n\"fleet_sweep\": 1,\n\"configs\": %zu,\n"
                 "\"entries\": [\n",
            view.entries.size());
    for (size_t i = 0; i < view.entries.size(); ++i) {
        std::string label =
            i < view.labels.size() ? view.labels[i] : "";
        std::string esc;
        esc.reserve(label.size());
        for (char c : label) {
            if (c == '"' || c == '\\')
                esc.push_back('\\');
            esc.push_back(c);
        }
        fprintf(out, "{\"label\": \"%s\",\n\"aggregate\":\n",
                esc.c_str());
        writeAggregateJson(view.entries[i], out);
        fprintf(out, "}%s\n",
                i + 1 < view.entries.size() ? "," : "");
    }
    fprintf(out, "]\n}\n");
}

std::optional<SweepView>
readSweepJson(const std::string &text)
{
    if (text.find("\"fleet_sweep\"") == std::string::npos)
        return std::nullopt;
    SweepView v;
    size_t pos = 0;
    while (true) {
        const size_t lab = valueOf(text, "label", pos);
        if (lab == std::string::npos || text[lab] != '"')
            break;
        std::string label;
        size_t p = lab + 1;
        while (p < text.size() && text[p] != '"') {
            if (text[p] == '\\' && p + 1 < text.size())
                ++p;
            label.push_back(text[p]);
            ++p;
        }
        // The entry's aggregate spans up to the next label (or the
        // end of the buffer) — hand that slice to the aggregate
        // reader, which sniffs its own marker.
        const size_t next = text.find("\"label\"", p);
        const std::string slice = text.substr(
            p, next == std::string::npos ? std::string::npos
                                         : next - p);
        std::optional<AggregateView> agg = readAggregateJson(slice);
        if (!agg)
            break;
        v.labels.push_back(std::move(label));
        v.entries.push_back(std::move(*agg));
        if (next == std::string::npos)
            break;
        pos = next;
    }
    if (v.entries.empty())
        return std::nullopt;
    return v;
}

} // namespace iocost::fleet
