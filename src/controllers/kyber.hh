/**
 * @file
 * Kyber: latency-oriented token scheduler.
 *
 * Kyber bounds the per-direction number of in-flight requests,
 * shrinking the async (write) depth whenever observed read latencies
 * exceed their target, so synchronous reads keep their latency even
 * under write floods. No cgroup awareness. Matches the paper's
 * characterization: overhead indistinguishable from no scheduler,
 * machine-wide properties only.
 */

#ifndef IOCOST_CONTROLLERS_KYBER_HH
#define IOCOST_CONTROLLERS_KYBER_HH

#include <deque>
#include <optional>

#include "blk/block_layer.hh"
#include "blk/io_controller.hh"
#include "sim/simulator.hh"
#include "stat/histogram.hh"

namespace iocost::controllers {

/** Tunables mirroring the kernel's kyber sysfs knobs. */
struct KyberConfig
{
    /** Target p90 read completion latency. */
    sim::Time readTarget = 2 * sim::kMsec;
    /** Target p90 write completion latency. */
    sim::Time writeTarget = 10 * sim::kMsec;
    /** Depth-adjustment window. */
    sim::Time window = 25 * sim::kMsec;
    /** Maximum write in-flight depth. */
    unsigned maxWriteDepth = 128;
};

/**
 * Kyber scheduler.
 */
class Kyber : public blk::IoController
{
  public:
    explicit Kyber(KyberConfig cfg = {})
        : cfg_(cfg), writeDepth_(cfg.maxWriteDepth)
    {}

    blk::ControllerCaps
    caps() const override
    {
        return blk::ControllerCaps{
            .name = "kyber",
            .lowOverhead = true,
            .workConserving = true,
            .memoryManagementAware = false,
            .proportionalFairness = false,
            .cgroupControl = false,
        };
    }

    sim::Time issueCpuCost() const override { return 200; }

    void attach(blk::BlockLayer &layer) override;
    void onSubmit(blk::BioPtr bio) override;
    void onComplete(const blk::Bio &bio,
                    const blk::CompletionInfo &info) override;

    /** Current adaptive write depth (for tests). */
    unsigned writeDepth() const { return writeDepth_; }

    void saveState(sim::StateWriter &w) const override;
    void loadState(sim::StateReader &r) override;

  private:
    void pump();
    void adjust();

    KyberConfig cfg_;
    unsigned writeDepth_;
    unsigned writeInFlight_ = 0;
    std::deque<blk::BioPtr> writes_;
    stat::Histogram windowReadLat_;
    stat::Histogram windowWriteLat_;
    std::optional<sim::PeriodicTimer> timer_;
};

} // namespace iocost::controllers

#endif // IOCOST_CONTROLLERS_KYBER_HH
