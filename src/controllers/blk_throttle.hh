/**
 * @file
 * blk-throttle: static per-cgroup IOPS / bytes-per-second limits.
 *
 * Each cgroup may be capped on four independent dimensions (read
 * IOPS, write IOPS, read B/s, write B/s), enforced with token
 * buckets. Hard limits are trivially isolating but not work
 * conserving — a capped cgroup can never use idle device capacity —
 * and, as the paper argues, picking per-application limits across
 * heterogeneous fleets is intractable.
 */

#ifndef IOCOST_CONTROLLERS_BLK_THROTTLE_HH
#define IOCOST_CONTROLLERS_BLK_THROTTLE_HH

#include <cstdint>
#include <deque>
#include <vector>

#include "blk/block_layer.hh"
#include "blk/io_controller.hh"
#include "sim/simulator.hh"

namespace iocost::controllers {

/** Per-cgroup limits; 0 means unlimited on that dimension. */
struct ThrottleLimits
{
    double riops = 0;
    double wiops = 0;
    double rbps = 0;
    double wbps = 0;
};

/** Construction-time configuration for blk-throttle. */
struct BlkThrottleConfig
{
    /**
     * Limits applied to every cgroup that has no explicit
     * setLimits() call — what a config file can express without
     * knowing cgroup ids. Default: unlimited.
     */
    ThrottleLimits defaultLimits;
};

/**
 * blk-throttle controller.
 */
class BlkThrottle : public blk::IoController
{
  public:
    explicit BlkThrottle(BlkThrottleConfig cfg = {})
        : cfg_(cfg)
    {}

    blk::ControllerCaps
    caps() const override
    {
        return blk::ControllerCaps{
            .name = "blk-throttle",
            .lowOverhead = true,
            .workConserving = false,
            .memoryManagementAware = false,
            .proportionalFairness = false,
            .cgroupControl = true,
        };
    }

    sim::Time issueCpuCost() const override { return 500; }

    /** Configure limits for one cgroup. */
    void setLimits(cgroup::CgroupId cg, ThrottleLimits limits);

    void onSubmit(blk::BioPtr bio) override;

    void saveState(sim::StateWriter &w) const override;
    void loadState(sim::StateReader &r) override;

  private:
    struct State
    {
        ThrottleLimits limits;
        /**
         * Virtual next-admission times per dimension: a request is
         * admitted at the max across its dimensions, and pushes each
         * forward by its cost (classic virtual-scheduling token
         * bucket).
         */
        sim::Time nextRead = 0;
        sim::Time nextWrite = 0;
        sim::Time nextReadBytes = 0;
        sim::Time nextWriteBytes = 0;
        std::deque<blk::BioPtr> waiting;
        sim::EventHandle kick;
    };

    State &state(cgroup::CgroupId cg);
    /** Admission time for the front of the queue / a new bio. */
    sim::Time admissionTime(State &st, const blk::Bio &bio) const;
    void charge(State &st, const blk::Bio &bio);
    void kick(cgroup::CgroupId cg);

    BlkThrottleConfig cfg_;
    std::deque<State> states_;
};

} // namespace iocost::controllers

#endif // IOCOST_CONTROLLERS_BLK_THROTTLE_HH
