/**
 * @file
 * Controller factory: build any IO control mechanism by name.
 *
 * Benches sweep mechanisms ("none", "mq-deadline", "kyber", "bfq",
 * "blk-throttle", "iolatency", "iocost") against identical stacks;
 * the factory centralizes construction and the Table 1 capability
 * listing.
 */

#ifndef IOCOST_CONTROLLERS_FACTORY_HH
#define IOCOST_CONTROLLERS_FACTORY_HH

#include <memory>
#include <string>
#include <vector>

#include "blk/io_controller.hh"
#include "core/iocost.hh"

namespace iocost::controllers {

/**
 * Construct a controller by mechanism name.
 *
 * @param name One of: none, mq-deadline, kyber, bfq, blk-throttle,
 *        iolatency, iocost.
 * @param iocost_config Configuration used when name == "iocost".
 * @return The controller, or nullptr for the literal "none-null"
 *         (no controller object at all).
 */
std::unique_ptr<blk::IoController>
makeController(const std::string &name,
               const core::IoCostConfig &iocost_config = {});

/** All mechanism names in Table 1 order. */
std::vector<std::string> allMechanisms();

/** Capability rows for Table 1 (same order as allMechanisms()). */
std::vector<blk::ControllerCaps> allCapabilities();

} // namespace iocost::controllers

#endif // IOCOST_CONTROLLERS_FACTORY_HH
