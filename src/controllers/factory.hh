/**
 * @file
 * Controller factory: build any IO control mechanism from one spec.
 *
 * Benches sweep mechanisms ("none", "mq-deadline", "kyber", "bfq",
 * "blk-throttle", "iolatency", "iocost") against identical stacks;
 * the factory centralizes construction and the Table 1 capability
 * listing. A ControllerSpec carries the per-mechanism configuration
 * so every caller — host options, CLI flags, fleet scenarios — can
 * hand over one value instead of threading mechanism-specific
 * config structs through every layer.
 */

#ifndef IOCOST_CONTROLLERS_FACTORY_HH
#define IOCOST_CONTROLLERS_FACTORY_HH

#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "blk/io_controller.hh"
#include "controllers/bfq.hh"
#include "controllers/blk_throttle.hh"
#include "controllers/io_latency.hh"
#include "controllers/kyber.hh"
#include "controllers/mq_deadline.hh"
#include "core/iocost.hh"

namespace iocost::controllers {

/**
 * Mechanism name plus every mechanism's construction-time config.
 *
 * Only the config matching `name` is consulted by makeController();
 * the others ride along at their defaults, which keeps the struct a
 * plain value that call sites can copy, mutate, and pass around.
 *
 * Implicit conversion from a mechanism-name string is deliberate:
 * `opts.controller = "kyber";` keeps working, and assignment of a
 * bare name replaces ONLY the name (configs are preserved), so the
 * order of "set name" vs "set config" at a call site never matters.
 */
struct ControllerSpec
{
    std::string name = "iocost";

    core::IoCostConfig iocost;
    KyberConfig kyber;
    MqDeadlineConfig mqDeadline;
    BfqConfig bfq;
    BlkThrottleConfig throttle;
    IoLatencyConfig iolatency;

    ControllerSpec() = default;
    ControllerSpec(const char *mechanism) : name(mechanism) {}
    ControllerSpec(std::string mechanism)
        : name(std::move(mechanism))
    {}

    /** Assigning a bare mechanism name keeps the configs. */
    ControllerSpec &
    operator=(const char *mechanism)
    {
        name = mechanism;
        return *this;
    }
    ControllerSpec &
    operator=(const std::string &mechanism)
    {
        name = mechanism;
        return *this;
    }

    bool operator==(const std::string &n) const { return name == n; }
    bool operator!=(const std::string &n) const { return name != n; }
};

/**
 * Construct the controller selected by @p spec.
 *
 * @param spec Mechanism name ("none", "mq-deadline", "kyber", "bfq",
 *        "blk-throttle", "iolatency", "iocost") plus per-mechanism
 *        configuration; only the selected mechanism's config is
 *        read.
 * @return The controller; fatal error on an unknown name.
 */
std::unique_ptr<blk::IoController>
makeController(const ControllerSpec &spec);

/**
 * Parse a controller spec line: a mechanism name followed by
 * optional space-separated key=value settings in the style of the
 * kernel's io.cost.* files.
 *
 *   "kyber rlat=2000 wlat=10000 window=25000 wdepth=128"
 *   "mq-deadline rexpire=500000 wexpire=5000000 batch=16"
 *   "bfq budget=524288 idle=2000 inject=4"
 *   "blk-throttle rbps=100e6 wbps=50e6 riops=1000 wiops=500"
 *   "iolatency window=100000 mindepth=1 maxdepth=65536"
 *   "iocost rbps=... rseqiops=... rpct=95 rlat=5000 min=50 max=150
 *           donation=1 debt=production period=10000"
 *
 * Times are microseconds (matching io.cost.qos rlat/wlat). For
 * "iocost" the remaining tokens are handed to parseModelLine() and
 * parseQosLine(), so any valid io.cost.model / io.cost.qos payload
 * is accepted verbatim after the mechanism name; donation=0|1,
 * debt=production|root|inversion and period=<usec> extend those
 * (period overrides just the planning period and is applied after
 * any qos payload, which replaces the whole QoS block).
 *
 * @return The parsed spec, or std::nullopt on an unknown mechanism
 *         or malformed key=value syntax.
 */
std::optional<ControllerSpec>
parseControllerSpec(const std::string &line);

/**
 * Split a sweep spec list into individual spec lines: entries are
 * ';'-separated, and commas within an entry are token separators
 * (equivalent to spaces), so "iocost,min=25;iocost,min=50" carries a
 * two-config sweep through contexts that cannot hold whitespace
 * (scenario key=value files). Empty entries are dropped.
 */
std::vector<std::string> splitSpecList(const std::string &line);

/**
 * The io.cost.model / io.cost.qos payload of an "iocost ..." spec
 * line: the tokens after the mechanism name minus the donation=,
 * debt= and period= extensions. Callers feed the result to parseModelLine() /
 * parseQosLine() to decide whether the spec supplied its own model
 * or qos keys (e.g. before injecting device-profile defaults).
 * Returns "" for a bare "iocost" or a non-iocost line.
 */
std::string iocostPayload(const std::string &line);

/** All mechanism names in Table 1 order. */
std::vector<std::string> allMechanisms();

/** Capability rows for Table 1 (same order as allMechanisms()). */
std::vector<blk::ControllerCaps> allCapabilities();

} // namespace iocost::controllers

#endif // IOCOST_CONTROLLERS_FACTORY_HH
