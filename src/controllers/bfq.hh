/**
 * @file
 * BFQ: Budget Fair Queueing (Valente & Checconi), simplified to the
 * properties the paper evaluates.
 *
 * BFQ grants cgroups exclusive *service turns*: the in-service queue
 * dispatches until its sector budget is exhausted or it runs dry,
 * then the queue with the smallest weighted virtual finish time is
 * selected next (B-WF2Q+). Fairness is accounted in sectors
 * (bytes) served — not device occupancy — which is exactly the
 * weakness Fig. 12 exposes on seek-dominated media, and the
 * exclusive turns are what produce the wide latency swings of
 * Figs. 10/11. No memory-management integration: swap IO is
 * throttled like any other (the priority inversion of §3.5).
 */

#ifndef IOCOST_CONTROLLERS_BFQ_HH
#define IOCOST_CONTROLLERS_BFQ_HH

#include <cstdint>
#include <deque>
#include <vector>

#include "blk/block_layer.hh"
#include "blk/io_controller.hh"
#include "sim/simulator.hh"

namespace iocost::controllers {

/** Tunables for the simplified BFQ. */
struct BfqConfig
{
    /** Per-turn service budget in bytes. */
    uint64_t budgetBytes = 512 * 1024;
    /**
     * Idle wait for more IO from the in-service queue before
     * expiring it (BFQ's device idling, which preserves a queue's
     * turn across short think times).
     */
    sim::Time idleWait = 2 * sim::kMsec;
    /**
     * Requests injected from other queues while idling on the
     * in-service queue (BFQ's injection mechanism, which is what
     * keeps it work-conserving across think times).
     */
    unsigned injectionDepth = 4;
};

/**
 * Simplified BFQ controller.
 */
class Bfq : public blk::IoController
{
  public:
    explicit Bfq(BfqConfig cfg = {})
        : cfg_(cfg)
    {}

    blk::ControllerCaps
    caps() const override
    {
        return blk::ControllerCaps{
            .name = "bfq",
            .lowOverhead = false,
            .workConserving = true,
            .memoryManagementAware = false,
            .proportionalFairness = true,
            .cgroupControl = true,
        };
    }

    sim::Time issueCpuCost() const override { return 6000; }

    void attach(blk::BlockLayer &layer) override;
    void onSubmit(blk::BioPtr bio) override;
    void onComplete(const blk::Bio &bio,
                    const blk::CompletionInfo &info) override;

    /** Currently in-service cgroup, or kNone. */
    cgroup::CgroupId inService() const { return inService_; }

    void saveState(sim::StateWriter &w) const override;
    void loadState(sim::StateReader &r) override;

  private:
    struct Queue
    {
        std::deque<blk::BioPtr> bios;
        /** Weighted virtual finish time (bytes / weight). */
        double vfinish = 0.0;
        bool ever = false;
    };

    Queue &queue(cgroup::CgroupId cg);
    bool deviceHasRoom() const;
    void selectNext();
    void expire();
    void pump();
    void inject();

    BfqConfig cfg_;
    std::deque<Queue> queues_;
    cgroup::CgroupId inService_ = cgroup::kNone;
    uint64_t budgetLeft_ = 0;
    uint64_t inServiceInFlight_ = 0;
    unsigned injectedInFlight_ = 0;
    double vtime_ = 0.0;
    sim::EventHandle idleTimer_;
};

} // namespace iocost::controllers

#endif // IOCOST_CONTROLLERS_BFQ_HH
