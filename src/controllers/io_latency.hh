/**
 * @file
 * IOLatency: latency-target based protection (the authors' first-
 * generation controller, §2.2).
 *
 * Each protected cgroup declares a completion-latency target. When a
 * cgroup with a tight target misses it, every cgroup with a looser
 * target has its queue depth cut; depths recover gradually while all
 * targets are met. This provides strict prioritization — but no
 * proportional control among equals, which is the paper's core
 * criticism. Reclaim (swap) IO bypasses the depth limits, matching
 * the kernel implementation's memory-management awareness.
 */

#ifndef IOCOST_CONTROLLERS_IO_LATENCY_HH
#define IOCOST_CONTROLLERS_IO_LATENCY_HH

#include <deque>
#include <optional>
#include <vector>

#include "blk/block_layer.hh"
#include "blk/io_controller.hh"
#include "sim/simulator.hh"
#include "stat/histogram.hh"

namespace iocost::controllers {

/** Tunables for IOLatency. */
struct IoLatencyConfig
{
    /** Evaluation window. */
    sim::Time window = 100 * sim::kMsec;
    /** Depth floor for punished cgroups. */
    unsigned minDepth = 1;
    /** Depth ceiling (effectively unlimited). */
    unsigned maxDepth = 1u << 16;
};

/**
 * IOLatency controller.
 */
class IoLatency : public blk::IoController
{
  public:
    explicit IoLatency(IoLatencyConfig cfg = {})
        : cfg_(cfg)
    {}

    blk::ControllerCaps
    caps() const override
    {
        return blk::ControllerCaps{
            .name = "iolatency",
            .lowOverhead = true,
            // Work conserving in principle, but configurations that
            // are both isolating and work conserving are hard to
            // find (§2.2) — the caps table marks it "~" which we
            // render as true with a footnote in the bench.
            .workConserving = true,
            .memoryManagementAware = true,
            .proportionalFairness = false,
            .cgroupControl = true,
        };
    }

    sim::Time issueCpuCost() const override { return 400; }

    /** Set the completion-latency target for @p cg (0 = none). */
    void setTarget(cgroup::CgroupId cg, sim::Time target);

    void attach(blk::BlockLayer &layer) override;
    void onSubmit(blk::BioPtr bio) override;
    void onComplete(const blk::Bio &bio,
                    const blk::CompletionInfo &info) override;

    /**
     * Return-to-userspace throttle for heavily punished cgroups
     * (the kernel's blkcg_schedule_throttle path): swap IO bypasses
     * the depth limit to avoid synchronous priority inversions, so
     * offenders generating reclaim IO are paced here instead.
     */
    sim::Time userspaceDelay(cgroup::CgroupId cg) override;

    /** Current depth limit of @p cg (for tests). */
    unsigned depthLimit(cgroup::CgroupId cg);

    void saveState(sim::StateWriter &w) const override;
    void loadState(sim::StateReader &r) override;

  private:
    struct State
    {
        sim::Time target = 0;
        unsigned depth = 1u << 16;
        unsigned inFlight = 0;
        stat::Histogram windowLat;
        std::deque<blk::BioPtr> waiting;
    };

    State &state(cgroup::CgroupId cg);
    void pump(cgroup::CgroupId cg);
    void evaluate();

    IoLatencyConfig cfg_;
    std::deque<State> states_;
    std::optional<sim::PeriodicTimer> timer_;
};

} // namespace iocost::controllers

#endif // IOCOST_CONTROLLERS_IO_LATENCY_HH
