#include "controllers/blk_throttle.hh"

#include <algorithm>

#include "blk/bio_state.hh"

namespace iocost::controllers {

void
BlkThrottle::setLimits(cgroup::CgroupId cg, ThrottleLimits limits)
{
    state(cg).limits = limits;
}

BlkThrottle::State &
BlkThrottle::state(cgroup::CgroupId cg)
{
    if (cg >= states_.size()) {
        const size_t old = states_.size();
        states_.resize(cg + 1);
        for (size_t i = old; i < states_.size(); ++i)
            states_[i].limits = cfg_.defaultLimits;
    }
    return states_[cg];
}

sim::Time
BlkThrottle::admissionTime(State &st, const blk::Bio &bio) const
{
    sim::Time when = 0;
    if (bio.op == blk::Op::Read) {
        if (st.limits.riops > 0)
            when = std::max(when, st.nextRead);
        if (st.limits.rbps > 0)
            when = std::max(when, st.nextReadBytes);
    } else {
        if (st.limits.wiops > 0)
            when = std::max(when, st.nextWrite);
        if (st.limits.wbps > 0)
            when = std::max(when, st.nextWriteBytes);
    }
    return when;
}

void
BlkThrottle::charge(State &st, const blk::Bio &bio)
{
    const sim::Time now = layer().sim().now();
    if (bio.op == blk::Op::Read) {
        if (st.limits.riops > 0) {
            st.nextRead = std::max(st.nextRead, now) +
                          static_cast<sim::Time>(1e9 /
                                                 st.limits.riops);
        }
        if (st.limits.rbps > 0) {
            st.nextReadBytes =
                std::max(st.nextReadBytes, now) +
                static_cast<sim::Time>(
                    static_cast<double>(bio.size) / st.limits.rbps *
                    1e9);
        }
    } else {
        if (st.limits.wiops > 0) {
            st.nextWrite = std::max(st.nextWrite, now) +
                           static_cast<sim::Time>(1e9 /
                                                  st.limits.wiops);
        }
        if (st.limits.wbps > 0) {
            st.nextWriteBytes =
                std::max(st.nextWriteBytes, now) +
                static_cast<sim::Time>(
                    static_cast<double>(bio.size) / st.limits.wbps *
                    1e9);
        }
    }
}

void
BlkThrottle::onSubmit(blk::BioPtr bio)
{
    const cgroup::CgroupId cg = bio->cgroup;
    State &st = state(cg);

    const sim::Time now = layer().sim().now();
    if (st.waiting.empty() && admissionTime(st, *bio) <= now) {
        charge(st, *bio);
        layer().dispatch(std::move(bio));
        return;
    }
    st.waiting.push_back(std::move(bio));
    if (!st.kick.pending())
        kick(cg);
}

void
BlkThrottle::kick(cgroup::CgroupId cg)
{
    State &st = state(cg);
    st.kick.cancel();
    const sim::Time now = layer().sim().now();
    while (!st.waiting.empty()) {
        const sim::Time when = admissionTime(st, *st.waiting.front());
        if (when <= now) {
            blk::BioPtr bio = std::move(st.waiting.front());
            st.waiting.pop_front();
            charge(st, *bio);
            stat::Telemetry &tel = layer().telemetry();
            if (tel.detailEnabled()) {
                tel.emit(now, "blk-throttle", cg, "throttle_wait_us",
                         sim::toMicros(now - bio->submitTime));
            }
            layer().dispatch(std::move(bio));
        } else {
            st.kick = layer().sim().at(when, [this, cg] {
                kick(cg);
            });
            break;
        }
    }
}

void
BlkThrottle::saveState(sim::StateWriter &w) const
{
    w.put(static_cast<uint32_t>(states_.size()));
    for (const State &st : states_) {
        w.put(st.limits);
        w.put(st.nextRead);
        w.put(st.nextWrite);
        w.put(st.nextReadBytes);
        w.put(st.nextWriteBytes);
        blk::saveBioSeq(w, st.waiting);
        layer().sim().events().saveHandle(w, st.kick);
    }
}

void
BlkThrottle::loadState(sim::StateReader &r)
{
    const auto n = r.get<uint32_t>();
    states_.resize(n);
    for (State &st : states_) {
        r.get(st.limits);
        r.get(st.nextRead);
        r.get(st.nextWrite);
        r.get(st.nextReadBytes);
        r.get(st.nextWriteBytes);
        blk::loadBioSeq(r, st.waiting);
        st.kick = layer().sim().events().loadHandle(r);
    }
}

} // namespace iocost::controllers
