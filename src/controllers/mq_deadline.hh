/**
 * @file
 * mq-deadline: the default Linux multiqueue IO scheduler.
 *
 * Machine-wide scheduling only (no cgroup awareness): reads are
 * preferred over writes, bounded by per-direction expiry deadlines
 * and a batching limit that prevents write starvation. Reproduced at
 * the granularity the paper evaluates it: it ensures "respectable
 * machine-wide performance" but provides no isolation.
 */

#ifndef IOCOST_CONTROLLERS_MQ_DEADLINE_HH
#define IOCOST_CONTROLLERS_MQ_DEADLINE_HH

#include <deque>

#include "blk/block_layer.hh"
#include "blk/io_controller.hh"
#include "sim/simulator.hh"

namespace iocost::controllers {

/** Tunables mirroring the kernel's mq-deadline sysfs knobs. */
struct MqDeadlineConfig
{
    /** Read FIFO expiry. */
    sim::Time readExpire = 500 * sim::kMsec;
    /** Write FIFO expiry. */
    sim::Time writeExpire = 5 * sim::kSec;
    /** Consecutive same-direction dispatches before switching. */
    unsigned fifoBatch = 16;
};

/**
 * Deadline scheduler.
 */
class MqDeadline : public blk::IoController
{
  public:
    explicit MqDeadline(MqDeadlineConfig cfg = {})
        : cfg_(cfg)
    {}

    blk::ControllerCaps
    caps() const override
    {
        return blk::ControllerCaps{
            .name = "mq-deadline",
            .lowOverhead = true,
            .workConserving = true,
            .memoryManagementAware = false,
            .proportionalFairness = false,
            .cgroupControl = false,
        };
    }

    sim::Time issueCpuCost() const override { return 1600; }

    void onSubmit(blk::BioPtr bio) override;
    void onComplete(const blk::Bio &bio,
                    const blk::CompletionInfo &info) override;

    void saveState(sim::StateWriter &w) const override;
    void loadState(sim::StateReader &r) override;

  private:
    bool deviceHasRoom() const;
    void pump();

    MqDeadlineConfig cfg_;
    std::deque<blk::BioPtr> reads_;
    std::deque<blk::BioPtr> writes_;
    unsigned batchCount_ = 0;
    blk::Op batchDir_ = blk::Op::Read;
};

} // namespace iocost::controllers

#endif // IOCOST_CONTROLLERS_MQ_DEADLINE_HH
