/**
 * @file
 * The "none" configuration: no scheduler, no controller.
 *
 * Bios pass straight to the device. Serves as the Fig. 9 baseline
 * (raw block-layer throughput) and the no-isolation comparison point
 * everywhere else.
 */

#ifndef IOCOST_CONTROLLERS_NOOP_HH
#define IOCOST_CONTROLLERS_NOOP_HH

#include "blk/block_layer.hh"
#include "blk/io_controller.hh"

namespace iocost::controllers {

/** Pass-through "scheduler". */
class NoopScheduler : public blk::IoController
{
  public:
    blk::ControllerCaps
    caps() const override
    {
        return blk::ControllerCaps{
            .name = "none",
            .lowOverhead = true,
            .workConserving = true,
            .memoryManagementAware = false,
            .proportionalFairness = false,
            .cgroupControl = false,
        };
    }

    sim::Time issueCpuCost() const override { return 150; }

    void
    onSubmit(blk::BioPtr bio) override
    {
        layer().dispatch(std::move(bio));
    }
};

} // namespace iocost::controllers

#endif // IOCOST_CONTROLLERS_NOOP_HH
