#include "controllers/kyber.hh"

#include <algorithm>

namespace iocost::controllers {

void
Kyber::attach(blk::BlockLayer &layer)
{
    IoController::attach(layer);
    timer_.emplace(layer.sim(), cfg_.window, [this] { adjust(); });
    timer_->start();
}

void
Kyber::onSubmit(blk::BioPtr bio)
{
    if (bio->op == blk::Op::Read) {
        // Synchronous reads are never held back.
        layer().dispatch(std::move(bio));
        return;
    }
    writes_.push_back(std::move(bio));
    pump();
}

void
Kyber::onComplete(const blk::Bio &bio, sim::Time device_latency)
{
    if (bio.op == blk::Op::Read) {
        windowReadLat_.record(device_latency);
    } else {
        windowWriteLat_.record(device_latency);
        if (writeInFlight_ > 0)
            --writeInFlight_;
        pump();
    }
}

void
Kyber::pump()
{
    while (!writes_.empty() && writeInFlight_ < writeDepth_) {
        blk::BioPtr bio = std::move(writes_.front());
        writes_.pop_front();
        ++writeInFlight_;
        layer().dispatch(std::move(bio));
    }
}

void
Kyber::adjust()
{
    const bool reads_hurt =
        windowReadLat_.count() >= 8 &&
        windowReadLat_.quantile(0.90) > cfg_.readTarget;
    const bool writes_hurt =
        windowWriteLat_.count() >= 8 &&
        windowWriteLat_.quantile(0.90) > cfg_.writeTarget;

    if (reads_hurt) {
        writeDepth_ = std::max(1u, writeDepth_ / 2);
    } else if (!writes_hurt && writeDepth_ < cfg_.maxWriteDepth) {
        // Additive recovery once latencies are healthy again.
        writeDepth_ = std::min(cfg_.maxWriteDepth, writeDepth_ + 4);
    }
    windowReadLat_.reset();
    windowWriteLat_.reset();
    pump();
}

} // namespace iocost::controllers
