#include "controllers/kyber.hh"

#include <algorithm>

#include "blk/bio_state.hh"
#include "sim/logging.hh"

namespace iocost::controllers {

void
Kyber::attach(blk::BlockLayer &layer)
{
    IoController::attach(layer);
    timer_.emplace(layer.sim(), cfg_.window, [this] { adjust(); });
    timer_->start();
}

void
Kyber::onSubmit(blk::BioPtr bio)
{
    if (bio->op == blk::Op::Read) {
        // Synchronous reads are never held back.
        layer().dispatch(std::move(bio));
        return;
    }
    writes_.push_back(std::move(bio));
    pump();
}

void
Kyber::onComplete(const blk::Bio &bio,
                  const blk::CompletionInfo &info)
{
    // Failed bios still release their depth slot, but only Ok
    // completions feed the percentile windows.
    if (bio.op == blk::Op::Read) {
        if (info.status == blk::BioStatus::Ok)
            windowReadLat_.record(info.deviceLatency);
    } else {
        if (info.status == blk::BioStatus::Ok)
            windowWriteLat_.record(info.deviceLatency);
        if (writeInFlight_ > 0)
            --writeInFlight_;
        pump();
    }
}

void
Kyber::pump()
{
    while (!writes_.empty() && writeInFlight_ < writeDepth_) {
        blk::BioPtr bio = std::move(writes_.front());
        writes_.pop_front();
        ++writeInFlight_;
        layer().dispatch(std::move(bio));
    }
}

void
Kyber::adjust()
{
    const bool reads_hurt =
        windowReadLat_.count() >= 8 &&
        windowReadLat_.quantile(0.90) > cfg_.readTarget;
    const bool writes_hurt =
        windowWriteLat_.count() >= 8 &&
        windowWriteLat_.quantile(0.90) > cfg_.writeTarget;

    if (reads_hurt) {
        writeDepth_ = std::max(1u, writeDepth_ / 2);
    } else if (!writes_hurt && writeDepth_ < cfg_.maxWriteDepth) {
        // Additive recovery once latencies are healthy again.
        writeDepth_ = std::min(cfg_.maxWriteDepth, writeDepth_ + 4);
    }

    stat::Telemetry &tel = layer().telemetry();
    if (tel.enabled()) {
        const sim::Time now = layer().sim().now();
        tel.emit(now, "kyber", stat::kNoCgroup, "write_depth",
                 static_cast<double>(writeDepth_));
        tel.emitSnapshot(now, "kyber", stat::kNoCgroup, "lat_read",
                         windowReadLat_.snapshot(now));
        tel.emitSnapshot(now, "kyber", stat::kNoCgroup, "lat_write",
                         windowWriteLat_.snapshot(now));
    }

    const sim::Time now = layer().sim().now();
    windowReadLat_.reset(now);
    windowWriteLat_.reset(now);
    pump();
}

void
Kyber::saveState(sim::StateWriter &w) const
{
    w.put(writeDepth_);
    w.put(writeInFlight_);
    blk::saveBioSeq(w, writes_);
    windowReadLat_.saveState(w);
    windowWriteLat_.saveState(w);
    w.put(timer_.has_value());
    if (timer_)
        timer_->saveState(w);
}

void
Kyber::loadState(sim::StateReader &r)
{
    r.get(writeDepth_);
    r.get(writeInFlight_);
    blk::loadBioSeq(r, writes_);
    windowReadLat_.loadState(r);
    windowWriteLat_.loadState(r);
    if (r.get<bool>()) {
        sim::panicIf(!timer_.has_value(),
                     "Kyber::loadState: timer mismatch");
        timer_->loadState(r);
    }
}

} // namespace iocost::controllers
