#include "controllers/mq_deadline.hh"

#include "blk/bio_state.hh"

namespace iocost::controllers {

bool
MqDeadline::deviceHasRoom() const
{
    auto *self = const_cast<MqDeadline *>(this);
    const blk::BlockDevice &dev = self->layer().device();
    return dev.inFlight() < dev.queueDepth() &&
           self->layer().dispatchQueueDepth() == 0;
}

void
MqDeadline::onSubmit(blk::BioPtr bio)
{
    if (bio->op == blk::Op::Read)
        reads_.push_back(std::move(bio));
    else
        writes_.push_back(std::move(bio));
    pump();
}

void
MqDeadline::onComplete(const blk::Bio &bio,
                       const blk::CompletionInfo &info)
{
    (void)bio;
    (void)info;
    pump();
}

void
MqDeadline::pump()
{
    const sim::Time now = layer().sim().now();
    while ((!reads_.empty() || !writes_.empty()) && deviceHasRoom()) {
        const bool write_expired =
            !writes_.empty() &&
            now - writes_.front()->submitTime >= cfg_.writeExpire;
        const bool read_expired =
            !reads_.empty() &&
            now - reads_.front()->submitTime >= cfg_.readExpire;

        blk::Op dir;
        if (write_expired) {
            // Expired writes take priority to prevent starvation.
            dir = blk::Op::Write;
        } else if (read_expired) {
            dir = blk::Op::Read;
        } else if (reads_.empty()) {
            dir = blk::Op::Write;
        } else if (writes_.empty()) {
            dir = blk::Op::Read;
        } else if (batchDir_ == blk::Op::Read &&
                   batchCount_ >= cfg_.fifoBatch) {
            // Both directions pending: prefer reads, but yield to
            // writes after a full read batch.
            dir = blk::Op::Write;
        } else {
            dir = blk::Op::Read;
        }

        if (dir == batchDir_) {
            ++batchCount_;
        } else {
            // Direction flips are the scheduler's only interesting
            // decision; emitting them (not every dispatch) keeps the
            // record volume proportional to batches.
            stat::Telemetry &tel = layer().telemetry();
            if (tel.enabled()) {
                tel.emit(now, "mq-deadline", stat::kNoCgroup,
                         "batch_dir",
                         dir == blk::Op::Write ? 1.0 : 0.0);
            }
            batchDir_ = dir;
            batchCount_ = 1;
        }

        auto &queue = dir == blk::Op::Read ? reads_ : writes_;
        blk::BioPtr bio = std::move(queue.front());
        queue.pop_front();
        layer().dispatch(std::move(bio));
    }
}

void
MqDeadline::saveState(sim::StateWriter &w) const
{
    blk::saveBioSeq(w, reads_);
    blk::saveBioSeq(w, writes_);
    w.put(batchCount_);
    w.put(batchDir_);
}

void
MqDeadline::loadState(sim::StateReader &r)
{
    blk::loadBioSeq(r, reads_);
    blk::loadBioSeq(r, writes_);
    r.get(batchCount_);
    r.get(batchDir_);
}

} // namespace iocost::controllers
