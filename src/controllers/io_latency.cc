#include "controllers/io_latency.hh"

#include <algorithm>

#include "blk/bio_state.hh"

namespace iocost::controllers {

void
IoLatency::attach(blk::BlockLayer &layer)
{
    IoController::attach(layer);
    timer_.emplace(layer.sim(), cfg_.window, [this] { evaluate(); });
    timer_->start();
}

void
IoLatency::setTarget(cgroup::CgroupId cg, sim::Time target)
{
    state(cg).target = target;
}

IoLatency::State &
IoLatency::state(cgroup::CgroupId cg)
{
    if (cg >= states_.size()) {
        const size_t old = states_.size();
        states_.resize(cg + 1);
        for (size_t i = old; i < states_.size(); ++i)
            states_[i].depth = cfg_.maxDepth;
    }
    return states_[cg];
}

unsigned
IoLatency::depthLimit(cgroup::CgroupId cg)
{
    return state(cg).depth;
}

sim::Time
IoLatency::userspaceDelay(cgroup::CgroupId cg)
{
    const State &st = state(cg);
    if (st.depth > 8)
        return 0;
    // Punished to (near) minimum depth: pace the thread for a
    // window fraction per trip to userspace, harder the deeper the
    // punishment.
    return cfg_.window / (2 * std::max(1u, st.depth));
}

void
IoLatency::onSubmit(blk::BioPtr bio)
{
    const cgroup::CgroupId cg = bio->cgroup;
    State &st = state(cg);

    // Reclaim and dirty-writeback IO must not be blocked behind the
    // depth limit (memory-management awareness).
    if (bio->swap || bio->wb) {
        ++st.inFlight;
        layer().dispatch(std::move(bio));
        return;
    }

    if (st.waiting.empty() && st.inFlight < st.depth) {
        ++st.inFlight;
        layer().dispatch(std::move(bio));
        return;
    }
    st.waiting.push_back(std::move(bio));
}

void
IoLatency::onComplete(const blk::Bio &bio,
                      const blk::CompletionInfo &info)
{
    State &st = state(bio.cgroup);
    if (st.inFlight > 0)
        --st.inFlight;
    // Failed bios free their depth slot but contribute no latency
    // sample — their timing describes the error path, not the
    // cgroup's service quality.
    if (info.status == blk::BioStatus::Ok)
        st.windowLat.record(info.deviceLatency);
    pump(bio.cgroup);
}

void
IoLatency::pump(cgroup::CgroupId cg)
{
    State &st = state(cg);
    while (!st.waiting.empty() && st.inFlight < st.depth) {
        blk::BioPtr bio = std::move(st.waiting.front());
        st.waiting.pop_front();
        ++st.inFlight;
        layer().dispatch(std::move(bio));
    }
}

void
IoLatency::evaluate()
{
    // Find the tightest-target cgroup that is currently missing it.
    sim::Time violated_target = 0;
    bool any_violation = false;
    for (const State &st : states_) {
        if (st.target == 0 || st.windowLat.count() < 8)
            continue;
        // The kernel compares the window mean against the target.
        if (st.windowLat.mean() >
            static_cast<double>(st.target)) {
            if (!any_violation || st.target < violated_target) {
                violated_target = st.target;
                any_violation = true;
            }
        }
    }

    stat::Telemetry &tel = layer().telemetry();
    const sim::Time now = layer().sim().now();
    for (cgroup::CgroupId cg = 0; cg < states_.size(); ++cg) {
        State &st = states_[cg];
        if (any_violation) {
            // Punish every cgroup with a looser (or no) target than
            // the violated one.
            if (st.target == 0 || st.target > violated_target)
                st.depth = std::max(cfg_.minDepth, st.depth / 2);
        } else if (st.depth < cfg_.maxDepth) {
            // Gradual recovery while everyone meets their target.
            st.depth = std::min<unsigned>(
                cfg_.maxDepth,
                st.depth + std::max(1u, st.depth / 4));
        }
        if (tel.enabled() && st.windowLat.count() > 0) {
            tel.emit(now, "iolatency", cg, "depth_limit",
                     static_cast<double>(st.depth));
            tel.emitSnapshot(now, "iolatency", cg, "lat",
                             st.windowLat.snapshot(now));
        }
        st.windowLat.reset(now);
        pump(cg);
    }
}

void
IoLatency::saveState(sim::StateWriter &w) const
{
    w.put(static_cast<uint32_t>(states_.size()));
    for (const State &st : states_) {
        w.put(st.target);
        w.put(st.depth);
        w.put(st.inFlight);
        st.windowLat.saveState(w);
        blk::saveBioSeq(w, st.waiting);
    }
    w.put(timer_.has_value());
    if (timer_)
        timer_->saveState(w);
}

void
IoLatency::loadState(sim::StateReader &r)
{
    const auto n = r.get<uint32_t>();
    states_.resize(n);
    for (State &st : states_) {
        r.get(st.target);
        r.get(st.depth);
        r.get(st.inFlight);
        st.windowLat.loadState(r);
        blk::loadBioSeq(r, st.waiting);
    }
    if (r.get<bool>()) {
        sim::panicIf(!timer_.has_value(),
                     "IoLatency::loadState: timer mismatch");
        timer_->loadState(r);
    }
}

} // namespace iocost::controllers
