#include "controllers/factory.hh"

#include <algorithm>

#include "controllers/noop.hh"
#include "core/config_parse.hh"
#include "sim/logging.hh"

namespace iocost::controllers {

std::unique_ptr<blk::IoController>
makeController(const ControllerSpec &spec)
{
    if (spec.name == "none")
        return std::make_unique<NoopScheduler>();
    if (spec.name == "mq-deadline")
        return std::make_unique<MqDeadline>(spec.mqDeadline);
    if (spec.name == "kyber")
        return std::make_unique<Kyber>(spec.kyber);
    if (spec.name == "bfq")
        return std::make_unique<Bfq>(spec.bfq);
    if (spec.name == "blk-throttle")
        return std::make_unique<BlkThrottle>(spec.throttle);
    if (spec.name == "iolatency")
        return std::make_unique<IoLatency>(spec.iolatency);
    if (spec.name == "iocost")
        return std::make_unique<core::IoCost>(spec.iocost);
    sim::fatal("unknown IO control mechanism: " + spec.name);
}

namespace {

sim::Time
micros(double v)
{
    return static_cast<sim::Time>(v * sim::kUsec);
}

/**
 * Apply one key=value setting to the mechanism named by spec.name.
 * @return false on an unrecognized key (iocost accepts everything
 *         here; its keys are validated by the io.cost parsers).
 */
bool
applyKey(ControllerSpec &spec, const std::string &key, double v)
{
    if (spec.name == "kyber") {
        if (key == "rlat")
            spec.kyber.readTarget = micros(v);
        else if (key == "wlat")
            spec.kyber.writeTarget = micros(v);
        else if (key == "window")
            spec.kyber.window = micros(v);
        else if (key == "wdepth")
            spec.kyber.maxWriteDepth = static_cast<unsigned>(v);
        else
            return false;
        return true;
    }
    if (spec.name == "mq-deadline") {
        if (key == "rexpire")
            spec.mqDeadline.readExpire = micros(v);
        else if (key == "wexpire")
            spec.mqDeadline.writeExpire = micros(v);
        else if (key == "batch")
            spec.mqDeadline.fifoBatch = static_cast<unsigned>(v);
        else
            return false;
        return true;
    }
    if (spec.name == "bfq") {
        if (key == "budget")
            spec.bfq.budgetBytes = static_cast<uint64_t>(v);
        else if (key == "idle")
            spec.bfq.idleWait = micros(v);
        else if (key == "inject")
            spec.bfq.injectionDepth = static_cast<unsigned>(v);
        else
            return false;
        return true;
    }
    if (spec.name == "blk-throttle") {
        if (key == "riops")
            spec.throttle.defaultLimits.riops = v;
        else if (key == "wiops")
            spec.throttle.defaultLimits.wiops = v;
        else if (key == "rbps")
            spec.throttle.defaultLimits.rbps = v;
        else if (key == "wbps")
            spec.throttle.defaultLimits.wbps = v;
        else
            return false;
        return true;
    }
    if (spec.name == "iolatency") {
        if (key == "window")
            spec.iolatency.window = micros(v);
        else if (key == "mindepth")
            spec.iolatency.minDepth = static_cast<unsigned>(v);
        else if (key == "maxdepth")
            spec.iolatency.maxDepth = static_cast<unsigned>(v);
        else
            return false;
        return true;
    }
    return false;
}

} // namespace

std::optional<ControllerSpec>
parseControllerSpec(const std::string &line)
{
    const std::vector<std::string> toks = core::configTokens(line);
    if (toks.empty())
        return std::nullopt;

    ControllerSpec spec(toks[0]);
    {
        const auto known = allMechanisms();
        if (std::find(known.begin(), known.end(), spec.name) ==
            known.end()) {
            return std::nullopt;
        }
    }

    if (spec.name == "iocost") {
        // The remainder is an io.cost.model + io.cost.qos payload
        // plus donation=/debt=/period= extensions: strip the
        // extensions, delegate the rest to the kernel-format parsers
        // (which each ignore the other's keys).
        std::string rest;
        std::optional<double> period;
        for (size_t i = 1; i < toks.size(); ++i) {
            std::string key, value;
            if (!core::configKeyValue(toks[i], key, value))
                return std::nullopt;
            if (key == "donation") {
                spec.iocost.donationEnabled = value != "0";
                continue;
            }
            if (key == "period") {
                double v = 0;
                if (!core::configPositiveNumber(value, v))
                    return std::nullopt;
                period = v;
                continue;
            }
            if (key == "debt") {
                if (value == "production")
                    spec.iocost.debtMode =
                        core::DebtMode::Production;
                else if (value == "root")
                    spec.iocost.debtMode =
                        core::DebtMode::RootCharge;
                else if (value == "inversion")
                    spec.iocost.debtMode =
                        core::DebtMode::Inversion;
                else
                    return std::nullopt;
                continue;
            }
            if (!rest.empty())
                rest += ' ';
            rest += toks[i];
        }
        if (!rest.empty()) {
            if (auto model = core::parseModelLine(rest))
                spec.iocost.model = core::CostModel::fromConfig(*model);
            if (auto qos = core::parseQosLine(rest))
                spec.iocost.qos = *qos;
        }
        // period= is applied after the qos payload: an explicit qos
        // block replaces the whole QoS struct (kernel semantics), and
        // the extension then overrides just the planning period.
        if (period)
            spec.iocost.qos.period = micros(*period);
        return spec;
    }

    for (size_t i = 1; i < toks.size(); ++i) {
        std::string key, value;
        double v = 0;
        if (!core::configKeyValue(toks[i], key, value) ||
            !core::configPositiveNumber(value, v) ||
            !applyKey(spec, key, v)) {
            return std::nullopt;
        }
    }
    return spec;
}

std::vector<std::string>
splitSpecList(const std::string &line)
{
    std::vector<std::string> out;
    size_t pos = 0;
    while (pos <= line.size()) {
        const size_t semi = line.find(';', pos);
        std::string entry = line.substr(
            pos, semi == std::string::npos ? std::string::npos
                                           : semi - pos);
        // Commas double as token separators so a whole entry can
        // live in one whitespace-free word (scenario files, shell
        // one-liners): "iocost,rlat=2000,min=50" == "iocost
        // rlat=2000 min=50".
        for (char &c : entry) {
            if (c == ',')
                c = ' ';
        }
        // Trim outer whitespace; skip empty entries (trailing ';').
        const size_t b = entry.find_first_not_of(" \t");
        if (b != std::string::npos) {
            const size_t e = entry.find_last_not_of(" \t");
            out.push_back(entry.substr(b, e - b + 1));
        }
        if (semi == std::string::npos)
            break;
        pos = semi + 1;
    }
    return out;
}

std::string
iocostPayload(const std::string &line)
{
    const std::vector<std::string> toks = core::configTokens(line);
    if (toks.empty() || toks[0] != "iocost")
        return "";
    std::string rest;
    for (size_t i = 1; i < toks.size(); ++i) {
        if (toks[i].rfind("donation=", 0) == 0 ||
            toks[i].rfind("debt=", 0) == 0 ||
            toks[i].rfind("period=", 0) == 0) {
            continue;
        }
        if (!rest.empty())
            rest += ' ';
        rest += toks[i];
    }
    return rest;
}

std::vector<std::string>
allMechanisms()
{
    return {"none",         "mq-deadline", "kyber", "blk-throttle",
            "bfq",          "iolatency",   "iocost"};
}

std::vector<blk::ControllerCaps>
allCapabilities()
{
    std::vector<blk::ControllerCaps> out;
    for (const std::string &name : allMechanisms())
        out.push_back(makeController(ControllerSpec(name))->caps());
    return out;
}

} // namespace iocost::controllers
