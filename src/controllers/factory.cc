#include "controllers/factory.hh"

#include "controllers/bfq.hh"
#include "controllers/blk_throttle.hh"
#include "controllers/io_latency.hh"
#include "controllers/kyber.hh"
#include "controllers/mq_deadline.hh"
#include "controllers/noop.hh"
#include "sim/logging.hh"

namespace iocost::controllers {

std::unique_ptr<blk::IoController>
makeController(const std::string &name,
               const core::IoCostConfig &iocost_config)
{
    if (name == "none")
        return std::make_unique<NoopScheduler>();
    if (name == "mq-deadline")
        return std::make_unique<MqDeadline>();
    if (name == "kyber")
        return std::make_unique<Kyber>();
    if (name == "bfq")
        return std::make_unique<Bfq>();
    if (name == "blk-throttle")
        return std::make_unique<BlkThrottle>();
    if (name == "iolatency")
        return std::make_unique<IoLatency>();
    if (name == "iocost")
        return std::make_unique<core::IoCost>(iocost_config);
    sim::fatal("unknown IO control mechanism: " + name);
}

std::vector<std::string>
allMechanisms()
{
    return {"none",         "mq-deadline", "kyber", "blk-throttle",
            "bfq",          "iolatency",   "iocost"};
}

std::vector<blk::ControllerCaps>
allCapabilities()
{
    std::vector<blk::ControllerCaps> out;
    for (const std::string &name : allMechanisms())
        out.push_back(makeController(name)->caps());
    return out;
}

} // namespace iocost::controllers
