#include "controllers/bfq.hh"

#include <algorithm>

#include "blk/bio_state.hh"

namespace iocost::controllers {

void
Bfq::attach(blk::BlockLayer &layer)
{
    IoController::attach(layer);
}

Bfq::Queue &
Bfq::queue(cgroup::CgroupId cg)
{
    if (cg >= queues_.size())
        queues_.resize(cg + 1);
    return queues_[cg];
}

bool
Bfq::deviceHasRoom() const
{
    auto *self = const_cast<Bfq *>(this);
    const blk::BlockDevice &dev = self->layer().device();
    return dev.inFlight() < dev.queueDepth() &&
           self->layer().dispatchQueueDepth() == 0;
}

void
Bfq::onSubmit(blk::BioPtr bio)
{
    const cgroup::CgroupId cg = bio->cgroup;
    Queue &q = queue(cg);
    if (!q.ever) {
        q.ever = true;
        layer().cgroups().setActive(cg, true);
    }
    if (q.bios.empty()) {
        // Freshly backlogged queues may not claim service from the
        // past: pull their finish time up to the global virtual time.
        q.vfinish = std::max(q.vfinish, vtime_);
    }
    q.bios.push_back(std::move(bio));

    if (inService_ == cgroup::kNone) {
        selectNext();
    } else if (inService_ == cg) {
        // More IO from the in-service queue cancels idling.
        idleTimer_.cancel();
    }
    pump();
}

void
Bfq::selectNext()
{
    idleTimer_.cancel();
    cgroup::CgroupId best = cgroup::kNone;
    double best_vf = 0.0;
    for (cgroup::CgroupId cg = 0; cg < queues_.size(); ++cg) {
        if (queues_[cg].bios.empty())
            continue;
        if (best == cgroup::kNone || queues_[cg].vfinish < best_vf) {
            best = cg;
            best_vf = queues_[cg].vfinish;
        }
    }
    inService_ = best;
    if (best != cgroup::kNone) {
        budgetLeft_ = cfg_.budgetBytes;
        vtime_ = std::max(vtime_, best_vf);
        stat::Telemetry &tel = layer().telemetry();
        if (tel.enabled()) {
            // Service-turn transitions: which queue holds the device
            // and at what virtual time it was picked.
            tel.emit(layer().sim().now(), "bfq", best, "in_service",
                     1.0);
        }
    }
}

void
Bfq::expire()
{
    inService_ = cgroup::kNone;
    inServiceInFlight_ = 0;
    selectNext();
}

void
Bfq::pump()
{
    while (inService_ != cgroup::kNone) {
        Queue &q = queues_[inService_];

        while (!q.bios.empty() && budgetLeft_ > 0 &&
               deviceHasRoom()) {
            blk::BioPtr bio = std::move(q.bios.front());
            q.bios.pop_front();
            const uint64_t bytes = bio->size;
            budgetLeft_ -= std::min(budgetLeft_, bytes);
            const double hw = std::max(
                layer().cgroups().hweightActive(inService_), 1e-6);
            q.vfinish += static_cast<double>(bytes) / hw;
            ++inServiceInFlight_;
            layer().dispatch(std::move(bio));
        }

        if (q.bios.empty() && inServiceInFlight_ == 0) {
            // Ran dry with nothing outstanding: idle briefly for
            // more IO from this queue (preserves sequential trains),
            // unless no budget remains anyway. While idling, inject
            // a bounded number of requests from other queues to
            // keep the device utilized.
            if (budgetLeft_ > 0) {
                if (!idleTimer_.pending()) {
                    const cgroup::CgroupId cg = inService_;
                    idleTimer_ = layer().sim().after(
                        cfg_.idleWait, [this, cg] {
                            if (inService_ == cg)
                                expire();
                        });
                }
                inject();
                return;
            }
            expire();
            continue;
        }

        if (budgetLeft_ == 0 && inServiceInFlight_ == 0) {
            expire();
            continue;
        }
        return;
    }
}

void
Bfq::inject()
{
    while (injectedInFlight_ < cfg_.injectionDepth &&
           deviceHasRoom()) {
        // Pick the non-in-service backlogged queue with the
        // smallest virtual finish time.
        cgroup::CgroupId best = cgroup::kNone;
        double best_vf = 0.0;
        for (cgroup::CgroupId cg = 0; cg < queues_.size(); ++cg) {
            if (cg == inService_ || queues_[cg].bios.empty())
                continue;
            if (best == cgroup::kNone ||
                queues_[cg].vfinish < best_vf) {
                best = cg;
                best_vf = queues_[cg].vfinish;
            }
        }
        if (best == cgroup::kNone)
            return;
        Queue &q = queues_[best];
        blk::BioPtr bio = std::move(q.bios.front());
        q.bios.pop_front();
        const double hw = std::max(
            layer().cgroups().hweightActive(best), 1e-6);
        q.vfinish += static_cast<double>(bio->size) / hw;
        ++injectedInFlight_;
        layer().dispatch(std::move(bio));
    }
}

void
Bfq::onComplete(const blk::Bio &bio,
                const blk::CompletionInfo &info)
{
    (void)info;
    if (bio.cgroup == inService_ && inServiceInFlight_ > 0) {
        --inServiceInFlight_;
    } else if (injectedInFlight_ > 0) {
        --injectedInFlight_;
    }
    pump();
}

void
Bfq::saveState(sim::StateWriter &w) const
{
    w.put(static_cast<uint32_t>(queues_.size()));
    for (const Queue &q : queues_) {
        blk::saveBioSeq(w, q.bios);
        w.put(q.vfinish);
        w.put(q.ever);
    }
    w.put(inService_);
    w.put(budgetLeft_);
    w.put(inServiceInFlight_);
    w.put(injectedInFlight_);
    w.put(vtime_);
    layer().sim().events().saveHandle(w, idleTimer_);
}

void
Bfq::loadState(sim::StateReader &r)
{
    const auto n = r.get<uint32_t>();
    queues_.resize(n);
    for (Queue &q : queues_) {
        blk::loadBioSeq(r, q.bios);
        r.get(q.vfinish);
        r.get(q.ever);
    }
    inService_ = r.get<cgroup::CgroupId>();
    r.get(budgetLeft_);
    r.get(inServiceInFlight_);
    r.get(injectedInFlight_);
    r.get(vtime_);
    idleTimer_ = layer().sim().events().loadHandle(r);
}

} // namespace iocost::controllers
