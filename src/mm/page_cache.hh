/**
 * @file
 * Page cache and dirty writeback: the buffered-IO half of the MM/IO
 * boundary (paper §3.5, Figs. 14/15).
 *
 * Buffered writers never talk to the block layer directly: they
 * dirty pages at memory speed and a background flusher issues the
 * actual writes later, from a kernel thread. Without cgroup
 * writeback attribution that flusher IO runs at root priority — a
 * low-priority batch job can launder an arbitrary write flood
 * through the page cache and starve everyone (the historical
 * blk-throttle blind spot). With attribution, each writeback bio is
 * charged to the *dirtying* cgroup and carries the bio wb flag, so
 * iocost turns its cost into debt (§3.5) and collects that debt by
 * pacing the dirtier at return-to-userspace — exactly the swap/meta
 * treatment, extended to the third kind of can't-wait IO.
 *
 * The model:
 *
 *  - per-cgroup clean/dirty/writeback byte accounting over a fixed
 *    cache capacity, with clean-page eviction from the biggest
 *    clean-holder when the cache fills;
 *  - buffered writes dirty pages instantly; a global dirty ratio
 *    (and optional per-cgroup limit) stalls writers that outrun the
 *    flusher — the kernel's balance_dirty_pages();
 *  - a FIFO of dirty extents with back-merge; the flusher issues
 *    expired extents every interval and drains above the background
 *    ratio, bounded by a writeback-congestion window;
 *  - fsync flushes the calling cgroup's extents immediately
 *    (ignoring congestion) and completes once every byte dirty at
 *    the call instant has been cleaned;
 *  - buffered reads hit with probability cached/span (the cgroup's
 *    cache footprint over its declared working-set span); misses
 *    are ordinary throttleable reads charged to the reader that
 *    fill the cache on completion.
 *
 * Everything is snapshot-safe: pending operations live in an
 * explicit slot arena (generation-counted, freelisted) whose
 * completion callbacks are cloneable InlineFunctions, mirroring the
 * event queue — deliberately NOT the shared_ptr AsyncBarrier idiom
 * MemoryManager uses, which is what keeps MM out of Host snapshots.
 */

#ifndef IOCOST_MM_PAGE_CACHE_HH
#define IOCOST_MM_PAGE_CACHE_HH

#include <algorithm>
#include <cstdint>
#include <deque>
#include <optional>
#include <vector>

#include "blk/block_layer.hh"
#include "cgroup/cgroup_tree.hh"
#include "sim/inline_function.hh"
#include "sim/rng.hh"
#include "sim/simulator.hh"
#include "sim/state.hh"

namespace iocost::mm {

/** Static page-cache and writeback configuration. */
struct PageCacheConfig
{
    /** Page cache capacity (clean + dirty + under-writeback). */
    uint64_t cacheBytes = 512ull << 20;

    /** Background writeback starts above this fraction of the
     *  cache (vm.dirty_background_ratio). */
    double dirtyBackgroundRatio = 0.10;

    /** Buffered writers stall above this fraction of the cache
     *  (vm.dirty_ratio — the balance_dirty_pages hard wall). */
    double dirtyRatio = 0.20;

    /**
     * Optional per-cgroup dirty limit as a fraction of the cache;
     * 0 disables. A single cgroup stalls at this wall even while
     * the global ratio is fine (memcg dirty throttling).
     */
    double cgroupDirtyRatio = 0.0;

    /** Periodic flusher wakeup (vm.dirty_writeback_centisecs). */
    sim::Time wbInterval = 500 * sim::kMsec;

    /** Age at which a dirty extent is written back regardless of
     *  pressure (vm.dirty_expire_centisecs). */
    sim::Time dirtyExpire = 5 * sim::kSec;

    /** Maximum bytes per writeback bio (extent merge cap). */
    uint32_t wbIoBytes = 256 * 1024;

    /**
     * Writeback congestion window: the background flusher stops
     * issuing while more than this much writeback is in flight.
     * fsync ignores it (integrity beats fairness).
     */
    uint64_t maxWbInflight = 32ull << 20;

    /**
     * Whether writeback bios are charged to the dirtying cgroup
     * (cgroup writeback + MM-integrated controllers, §3.5) or
     * issued at root attribution like the historical flusher
     * threads — which is what controllers without writeback
     * integration actually see, and why a dirty flood runs at root
     * priority under them.
     */
    bool chargeWbToDirtier = true;
};

/**
 * Per-cgroup page-cache counters. Trivially copyable by design:
 * the snapshot path serializes the whole table with one putPods.
 */
struct CacheCgroupStats
{
    /** Clean cached bytes (evictable). */
    uint64_t cachedClean = 0;
    /** Dirty bytes awaiting writeback. */
    uint64_t dirty = 0;
    /** Bytes with writeback IO in flight. */
    uint64_t writeback = 0;
    /**
     * Cumulative bytes cleaned (writeback completions, including
     * failed attempts — the page is no longer dirty either way).
     * Monotonic: fsync waits for cleanedBytes to reach the value
     * it computed at call time, which cannot livelock on new dirt.
     */
    uint64_t cleanedBytes = 0;
    /** Cumulative buffered-write bytes. */
    uint64_t bufferedWriteBytes = 0;
    /** Cumulative read bytes served from cache. */
    uint64_t readHitBytes = 0;
    /** Cumulative read bytes that missed and went to the device. */
    uint64_t readMissBytes = 0;
    /** Cumulative writeback bytes issued on this cgroup's behalf. */
    uint64_t wbIssuedBytes = 0;
    /** Writeback bios that completed with an error. */
    uint64_t wbFailed = 0;
    /** fsync calls. */
    uint64_t fsyncs = 0;
    /** Writes stalled at a dirty limit. */
    uint64_t throttleStalls = 0;
    /** Total time spent in dirty-limit stalls. */
    sim::Time throttleTime = 0;
    /**
     * Declared working-set span (bytes of distinct file data the
     * cgroup's workloads address); denominator of the cache-hit
     * probability. 0 = never hits.
     */
    uint64_t span = 0;
    /** Per-cgroup dirty limit override in bytes; 0 = use ratios. */
    uint64_t dirtyLimitOverride = 0;
};

/**
 * The page cache and its writeback flusher.
 */
class PageCache : public sim::Snapshottable
{
  public:
    /**
     * Completion callback for buffered operations. Inline and
     * cloneable (captures must be copyable): pending operations are
     * part of the host snapshot image.
     */
    using DoneFn = sim::InlineFunction<void(), 48>;

    PageCache(sim::Simulator &sim, blk::BlockLayer &layer,
              PageCacheConfig cfg);

    PageCache(const PageCache &) = delete;
    PageCache &operator=(const PageCache &) = delete;

    /**
     * Buffered write of @p bytes at @p offset for @p cg: dirties
     * pages at memory speed, kicks background writeback above the
     * background ratio, and stalls the writer at the hard dirty
     * wall. @p done fires when the write would have returned to
     * userspace — including any dirty-limit stall and the
     * controller's return-to-userspace debt delay (how iocost
     * collects writeback debt from the dirtier, §3.5).
     */
    void write(cgroup::CgroupId cg, uint64_t offset, uint64_t bytes,
               DoneFn done);

    /**
     * Buffered read of @p bytes for @p cg: hits complete at memory
     * speed with probability cachedBytes/span; misses issue an
     * ordinary throttleable device read charged to the reader and
     * fill the cache on completion.
     */
    void read(cgroup::CgroupId cg, uint64_t offset, uint64_t bytes,
              DoneFn done);

    /**
     * Flush @p cg's dirty extents immediately (ignoring the
     * congestion window) and fire @p done once every byte that was
     * dirty or under writeback at the call instant has been
     * cleaned. The fsync barrier of the paper's Fig. 15 workload.
     */
    void fsync(cgroup::CgroupId cg, DoneFn done);

    /** Grow @p cg's declared working-set span (additive: each
     *  workload registers the region it addresses). */
    void addSpan(cgroup::CgroupId cg, uint64_t bytes);

    /** Per-cgroup dirty limit override in bytes (0 = ratios). */
    void setDirtyLimit(cgroup::CgroupId cg, uint64_t bytes);

    /** Per-cgroup counters. */
    const CacheCgroupStats &stats(cgroup::CgroupId cg) const;

    /** Total dirty bytes across all cgroups. */
    uint64_t totalDirty() const { return totalDirty_; }

    /** Total cached bytes (clean + dirty + writeback). */
    uint64_t totalCached() const { return totalCached_; }

    /** Writeback bytes currently in flight. */
    uint64_t wbInflight() const { return wbInflight_; }

    /** Buffered operations currently parked (stalls + fsyncs). */
    size_t pendingOps() const;

    /** The static configuration. */
    const PageCacheConfig &config() const { return cfg_; }

    /**
     * @name Snapshot support. Fully covered: parked operations,
     * the dirty-extent FIFO, in-flight-writeback accounting and
     * the flusher timers all round-trip (tests fuzz restore points
     * inside stalls and fsync barriers).
     * @{
     */
    void saveState(sim::StateWriter &w) const override;
    void loadState(sim::StateReader &r) override;
    /** @} */

  private:
    /** One dirty file extent awaiting writeback (FIFO order ==
     *  dirtying order; bytes == 0 marks a tombstone left by an
     *  fsync's mid-queue extraction). */
    struct DirtyExtent
    {
        sim::Time dirtiedAt = 0;
        uint64_t offset = 0;
        uint32_t bytes = 0;
        cgroup::CgroupId cg = 0;
    };

    /**
     * FIFO ring of dirty extents. Deliberately not a std::deque:
     * steady-state flusher traffic pushes at the back while popping
     * from the front, and a deque allocates a fresh chunk every
     * ~20 extents forever as exhausted front chunks are freed (the
     * `--check-allocs` writeback lane caught exactly that). The
     * ring doubles until it covers the deepest backlog, then stays
     * allocation-free.
     */
    class ExtentRing
    {
      public:
        bool empty() const { return count_ == 0; }
        size_t size() const { return count_; }
        DirtyExtent &operator[](size_t i)
        {
            return buf_[(head_ + i) % buf_.size()];
        }
        const DirtyExtent &operator[](size_t i) const
        {
            return buf_[(head_ + i) % buf_.size()];
        }
        const DirtyExtent &front() const { return (*this)[0]; }
        DirtyExtent &back() { return (*this)[count_ - 1]; }

        void
        push_back(const DirtyExtent &ext)
        {
            if (count_ == buf_.size())
                grow();
            buf_[(head_ + count_) % buf_.size()] = ext;
            ++count_;
        }

        void
        pop_front()
        {
            head_ = (head_ + 1) % buf_.size();
            --count_;
        }

        /** Replace the contents with @p flat, front first. */
        void
        assign(const std::vector<DirtyExtent> &flat)
        {
            buf_.assign(std::max<size_t>(flat.size(), 1),
                        DirtyExtent{});
            std::copy(flat.begin(), flat.end(), buf_.begin());
            head_ = 0;
            count_ = flat.size();
        }

      private:
        void
        grow()
        {
            std::vector<DirtyExtent> bigger(
                std::max<size_t>(buf_.size() * 2, 64));
            for (size_t i = 0; i < count_; ++i)
                bigger[i] = (*this)[i];
            buf_ = std::move(bigger);
            head_ = 0;
        }

        std::vector<DirtyExtent> buf_;
        size_t head_ = 0;
        size_t count_ = 0;
    };

    /** What a parked operation is waiting for. */
    enum class OpKind : uint8_t
    {
        /** Dirty-limit stall: released when the writer's limits
         *  clear again. */
        ThrottledWrite,
        /** fsync barrier: released when cleanedBytes reaches
         *  target. */
        Fsync,
        /** Buffered read miss: released by the fill IO's
         *  completion (target carries the fill size). */
        ReadMiss,
    };

    /**
     * One parked buffered operation. Slots live in a
     * generation-counted freelist arena (the event-queue idiom):
     * POD bookkeeping plus one cloneable callback, so the whole
     * table serializes into a snapshot.
     */
    struct OpSlot
    {
        DoneFn done;
        /** Fsync: the cleanedBytes value to wait for.
         *  ThrottledWrite: unused. */
        uint64_t target = 0;
        /** When the operation parked (stall-time accounting). */
        sim::Time parkedAt = 0;
        cgroup::CgroupId cg = 0;
        OpKind kind = OpKind::ThrottledWrite;
        bool inUse = false;
        uint32_t nextFree = kNoSlot;
    };
    static constexpr uint32_t kNoSlot = UINT32_MAX;

    CacheCgroupStats &st(cgroup::CgroupId cg);

    /** Hard dirty wall for @p cg's writers (global + per-cgroup). */
    bool overDirtyLimit(const CacheCgroupStats &s) const;

    /** Evict clean pages until the cache fits its capacity. */
    void evictForSpace();

    /** Park the current operation; returns the slot id. */
    uint32_t parkOp(cgroup::CgroupId cg, OpKind kind,
                    uint64_t target, DoneFn done);

    /** Return a slot to the freelist. */
    void freeSlot(uint32_t slot);

    /** Complete and free a parked operation (debt delay applied). */
    void releaseOp(uint32_t slot);

    /** A read-miss fill completed: populate the cache, run done. */
    void onReadFill(uint32_t slot);

    /** Schedule an immediate flusher pass (coalesced). */
    void kickFlusher();

    /** Periodic flusher: expired extents plus over-background
     *  drain, bounded by the congestion window. */
    void flushPass();

    /** Issue writeback for one extent (the caller already removed
     *  it from the FIFO and checked congestion). */
    void issueExtent(const DirtyExtent &ext);

    /** fsync fast-flush: issue every extent of @p cg now. */
    void flushForFsync(cgroup::CgroupId cg);

    /** A writeback bio completed (any status): account the cleaned
     *  bytes and wake whoever was waiting on them. */
    void onWbComplete(cgroup::CgroupId cg, uint32_t bytes,
                      bool failed);

    /** Wake parked operations whose condition now holds. */
    void wakeWaiters();

    /** Apply the controller's return-to-userspace delay, then
     *  @p done — the debt-collection hook (§3.5). */
    void finishWithDebtDelay(cgroup::CgroupId cg, DoneFn done);

    /** Drop tombstones off the FIFO head. */
    void trimQueue();

    /** Period-level writeback telemetry (source "wb"). */
    void publishTelemetry();

    sim::Simulator &sim_;
    blk::BlockLayer &layer_;
    PageCacheConfig cfg_;
    sim::Rng rng_;

    std::deque<CacheCgroupStats> stats_;
    uint64_t totalCached_ = 0;
    uint64_t totalDirty_ = 0;
    uint64_t wbInflight_ = 0;

    ExtentRing queue_;

    std::vector<OpSlot> slots_;
    uint32_t freeSlot_ = kNoSlot;
    /** Parked slot ids, in park order (scan-and-release). */
    std::vector<uint32_t> throttled_;
    std::vector<uint32_t> fsyncWaiters_;

    std::optional<sim::PeriodicTimer> flushTimer_;
    bool kickPending_ = false;
    sim::EventHandle kickEvent_;
    /** Transient wakeWaiters() re-entrancy guard (never set across
     *  an event boundary, so it is not snapshot state). */
    bool waking_ = false;
};

} // namespace iocost::mm

#endif // IOCOST_MM_PAGE_CACHE_HH
