#include "mm/page_cache.hh"

#include <algorithm>
#include <memory>

#include "stat/telemetry.hh"

namespace iocost::mm {

PageCache::PageCache(sim::Simulator &sim, blk::BlockLayer &layer,
                     PageCacheConfig cfg)
    : sim_(sim), layer_(layer), cfg_(cfg), rng_(sim.forkRng())
{
    flushTimer_.emplace(sim_, cfg_.wbInterval, [this] {
        flushPass();
        publishTelemetry();
    });
    flushTimer_->start();
}

CacheCgroupStats &
PageCache::st(cgroup::CgroupId cg)
{
    if (cg >= stats_.size())
        stats_.resize(cg + 1);
    return stats_[cg];
}

const CacheCgroupStats &
PageCache::stats(cgroup::CgroupId cg) const
{
    static const CacheCgroupStats empty;
    if (cg >= stats_.size())
        return empty;
    return stats_[cg];
}

void
PageCache::addSpan(cgroup::CgroupId cg, uint64_t bytes)
{
    st(cg).span += bytes;
}

void
PageCache::setDirtyLimit(cgroup::CgroupId cg, uint64_t bytes)
{
    st(cg).dirtyLimitOverride = bytes;
}

size_t
PageCache::pendingOps() const
{
    size_t n = 0;
    for (const OpSlot &sl : slots_)
        n += sl.inUse ? 1 : 0;
    return n;
}

bool
PageCache::overDirtyLimit(const CacheCgroupStats &s) const
{
    // The global wall counts dirty plus under-writeback bytes, like
    // the kernel's dirty_ratio (both still occupy the cache and the
    // flusher has not proven it can keep up).
    const auto hard = static_cast<uint64_t>(
        cfg_.dirtyRatio * static_cast<double>(cfg_.cacheBytes));
    if (totalDirty_ + wbInflight_ > hard)
        return true;
    uint64_t cg_limit = s.dirtyLimitOverride;
    if (cg_limit == 0 && cfg_.cgroupDirtyRatio > 0.0) {
        cg_limit = static_cast<uint64_t>(
            cfg_.cgroupDirtyRatio *
            static_cast<double>(cfg_.cacheBytes));
    }
    return cg_limit > 0 && s.dirty + s.writeback > cg_limit;
}

void
PageCache::evictForSpace()
{
    // Evict clean pages from the biggest clean-holder (ties: lowest
    // id) until the cache fits. Dirty and under-writeback pages are
    // pinned; if only those remain the cache temporarily overshoots
    // — which is exactly the pressure the dirty wall then absorbs.
    while (totalCached_ > cfg_.cacheBytes) {
        cgroup::CgroupId victim = cgroup::kNone;
        uint64_t biggest = 0;
        for (cgroup::CgroupId cg = 0; cg < stats_.size(); ++cg) {
            if (stats_[cg].cachedClean > biggest) {
                biggest = stats_[cg].cachedClean;
                victim = cg;
            }
        }
        if (victim == cgroup::kNone)
            break;
        const uint64_t chunk = std::min(
            biggest, totalCached_ - cfg_.cacheBytes);
        stats_[victim].cachedClean -= chunk;
        totalCached_ -= chunk;
    }
}

void
PageCache::write(cgroup::CgroupId cg, uint64_t offset,
                 uint64_t bytes, DoneFn done)
{
    CacheCgroupStats &s = st(cg);
    s.bufferedWriteBytes += bytes;

    // A fraction of the write lands on pages already cached clean
    // (proportional to the cgroup's clean coverage of its span):
    // those convert in place. The remainder allocates fresh cache.
    uint64_t from_clean = 0;
    if (s.span > 0 && s.cachedClean > 0) {
        const double clean_frac = std::min(
            1.0, static_cast<double>(s.cachedClean) /
                     static_cast<double>(s.span));
        from_clean = std::min(
            s.cachedClean,
            static_cast<uint64_t>(
                clean_frac * static_cast<double>(bytes)));
    }
    s.cachedClean -= from_clean;
    s.dirty += bytes;
    totalDirty_ += bytes;
    totalCached_ += bytes - from_clean;
    evictForSpace();

    // Record the dirty range as writeback extents, back-merging
    // contiguous same-cgroup dirt up to one bio's worth.
    const sim::Time now = sim_.now();
    uint64_t left = bytes;
    uint64_t at = offset;
    while (left > 0) {
        const auto chunk = static_cast<uint32_t>(std::min<uint64_t>(
            left, cfg_.wbIoBytes));
        if (!queue_.empty()) {
            DirtyExtent &back = queue_.back();
            if (back.cg == cg && back.bytes > 0 &&
                back.offset + back.bytes == at &&
                back.bytes + chunk <= cfg_.wbIoBytes) {
                back.bytes += chunk;
                at += chunk;
                left -= chunk;
                continue;
            }
        }
        DirtyExtent ext;
        ext.dirtiedAt = now;
        ext.offset = at;
        ext.bytes = chunk;
        ext.cg = cg;
        queue_.push_back(ext);
        at += chunk;
        left -= chunk;
    }

    const auto bg = static_cast<uint64_t>(
        cfg_.dirtyBackgroundRatio *
        static_cast<double>(cfg_.cacheBytes));
    if (totalDirty_ > bg)
        kickFlusher();

    if (overDirtyLimit(s)) {
        // balance_dirty_pages(): the writer outran the flusher and
        // stalls until its dirt drains below the wall.
        ++s.throttleStalls;
        throttled_.push_back(parkOp(cg, OpKind::ThrottledWrite, 0,
                                    std::move(done)));
        return;
    }
    finishWithDebtDelay(cg, std::move(done));
}

void
PageCache::read(cgroup::CgroupId cg, uint64_t offset,
                uint64_t bytes, DoneFn done)
{
    CacheCgroupStats &s = st(cg);
    const uint64_t cached = s.cachedClean + s.dirty + s.writeback;
    const double hit_p =
        s.span > 0 ? std::min(1.0, static_cast<double>(cached) /
                                       static_cast<double>(s.span))
                   : 0.0;
    // One draw per read whatever the outcome: the RNG stream stays
    // aligned across configurations that only differ in hit rate.
    const bool hit = rng_.uniform() < hit_p;
    if (hit) {
        s.readHitBytes += bytes;
        done();
        return;
    }
    s.readMissBytes += bytes;

    // Miss: an ordinary throttleable device read charged to the
    // reader; the slot carries the fill size and the continuation.
    const uint32_t slot = parkOp(cg, OpKind::ReadMiss, bytes,
                                 std::move(done));
    blk::BioPtr bio = blk::Bio::make(
        blk::Op::Read, offset,
        static_cast<uint32_t>(
            std::min<uint64_t>(bytes, UINT32_MAX)),
        cg, [this, slot](const blk::Bio &) { onReadFill(slot); });
    layer_.submit(std::move(bio));
}

void
PageCache::onReadFill(uint32_t slot)
{
    OpSlot &sl = slots_[slot];
    CacheCgroupStats &s = st(sl.cg);
    s.cachedClean += sl.target;
    totalCached_ += sl.target;
    evictForSpace();
    DoneFn done = std::move(sl.done);
    freeSlot(slot);
    done();
}

void
PageCache::fsync(cgroup::CgroupId cg, DoneFn done)
{
    CacheCgroupStats &s = st(cg);
    ++s.fsyncs;
    const uint64_t pending = s.dirty + s.writeback;
    if (pending == 0) {
        // Nothing to wait for; the syscall still pays any debt.
        finishWithDebtDelay(cg, std::move(done));
        return;
    }
    // Wait for every byte dirty at this instant to be cleaned.
    // cleanedBytes is monotonic, so dirt added after the call can
    // neither satisfy nor starve the barrier.
    const uint64_t target = s.cleanedBytes + pending;
    fsyncWaiters_.push_back(
        parkOp(cg, OpKind::Fsync, target, std::move(done)));
    flushForFsync(cg);
}

uint32_t
PageCache::parkOp(cgroup::CgroupId cg, OpKind kind, uint64_t target,
                  DoneFn done)
{
    uint32_t id;
    if (freeSlot_ != kNoSlot) {
        id = freeSlot_;
        freeSlot_ = slots_[id].nextFree;
    } else {
        id = static_cast<uint32_t>(slots_.size());
        slots_.emplace_back();
    }
    OpSlot &sl = slots_[id];
    sl.done = std::move(done);
    sl.target = target;
    sl.parkedAt = sim_.now();
    sl.cg = cg;
    sl.kind = kind;
    sl.inUse = true;
    sl.nextFree = kNoSlot;
    return id;
}

void
PageCache::freeSlot(uint32_t slot)
{
    OpSlot &sl = slots_[slot];
    sl.done.reset();
    sl.inUse = false;
    sl.nextFree = freeSlot_;
    freeSlot_ = slot;
}

void
PageCache::releaseOp(uint32_t slot)
{
    OpSlot &sl = slots_[slot];
    const cgroup::CgroupId cg = sl.cg;
    if (sl.kind == OpKind::ThrottledWrite)
        st(cg).throttleTime += sim_.now() - sl.parkedAt;
    DoneFn done = std::move(sl.done);
    freeSlot(slot);
    finishWithDebtDelay(cg, std::move(done));
}

void
PageCache::kickFlusher()
{
    if (kickPending_)
        return;
    kickPending_ = true;
    kickEvent_ = sim_.after(0, [this] {
        kickPending_ = false;
        flushPass();
    });
}

void
PageCache::trimQueue()
{
    while (!queue_.empty() && queue_.front().bytes == 0)
        queue_.pop_front();
}

void
PageCache::flushPass()
{
    const auto bg = static_cast<uint64_t>(
        cfg_.dirtyBackgroundRatio *
        static_cast<double>(cfg_.cacheBytes));
    const sim::Time now = sim_.now();
    while (wbInflight_ < cfg_.maxWbInflight) {
        trimQueue();
        if (queue_.empty())
            break;
        const DirtyExtent &ext = queue_.front();
        const bool expired =
            now - ext.dirtiedAt >= cfg_.dirtyExpire;
        if (!expired && totalDirty_ + wbInflight_ <= bg)
            break;
        const DirtyExtent copy = ext;
        queue_.pop_front();
        issueExtent(copy);
    }
}

void
PageCache::flushForFsync(cgroup::CgroupId cg)
{
    // Integrity beats fairness: issue every one of the cgroup's
    // extents right now, ignoring the congestion window. Mid-queue
    // extents are tombstoned in place (bytes = 0) so extraction
    // stays linear; trimQueue() reaps them from the head.
    for (size_t i = 0; i < queue_.size(); ++i) {
        DirtyExtent &ext = queue_[i];
        if (ext.cg != cg || ext.bytes == 0)
            continue;
        const DirtyExtent copy = ext;
        ext.bytes = 0;
        issueExtent(copy);
    }
    trimQueue();
}

void
PageCache::issueExtent(const DirtyExtent &ext)
{
    CacheCgroupStats &s = st(ext.cg);
    s.dirty -= ext.bytes;
    s.writeback += ext.bytes;
    s.wbIssuedBytes += ext.bytes;
    totalDirty_ -= ext.bytes;
    wbInflight_ += ext.bytes;

    // Cgroup writeback attribution (§3.5) or the historical
    // root-attributed flusher, per configuration. The stats always
    // follow the dirtier; only the charged cgroup changes.
    const cgroup::CgroupId charge =
        cfg_.chargeWbToDirtier ? ext.cg : cgroup::kRoot;
    blk::BioPtr bio = blk::Bio::make(
        blk::Op::Write, ext.offset, ext.bytes, charge,
        [this, cg = ext.cg, bytes = ext.bytes](const blk::Bio &b) {
            onWbComplete(cg, bytes,
                         b.status != blk::BioStatus::Ok);
        });
    bio->wb = true;
    layer_.submit(std::move(bio));
}

void
PageCache::onWbComplete(cgroup::CgroupId cg, uint32_t bytes,
                        bool failed)
{
    CacheCgroupStats &s = st(cg);
    s.writeback -= bytes;
    s.cachedClean += bytes;
    // Failed writeback still cleans the page in this model (the
    // kernel redirties; we fold the retry into the error counter so
    // fsync barriers and dirty walls can never wedge on a dead
    // device — the chaos benches rely on completions always
    // arriving).
    s.cleanedBytes += bytes;
    if (failed)
        ++s.wbFailed;
    wbInflight_ -= bytes;

    wakeWaiters();

    // Congestion may have parked work behind this completion.
    const auto bg = static_cast<uint64_t>(
        cfg_.dirtyBackgroundRatio *
        static_cast<double>(cfg_.cacheBytes));
    if (totalDirty_ > bg && !queue_.empty())
        kickFlusher();
}

void
PageCache::wakeWaiters()
{
    // Re-entrancy guard: releasing an operation runs user code that
    // can park or complete further operations synchronously. The
    // outer call keeps rescanning until a full pass releases
    // nothing, so nested wake conditions cannot be missed.
    if (waking_)
        return;
    waking_ = true;
    bool released = true;
    while (released) {
        released = false;
        for (size_t i = 0; i < fsyncWaiters_.size();) {
            const uint32_t id = fsyncWaiters_[i];
            const OpSlot &sl = slots_[id];
            if (st(sl.cg).cleanedBytes >= sl.target) {
                fsyncWaiters_[i] = fsyncWaiters_.back();
                fsyncWaiters_.pop_back();
                releaseOp(id);
                released = true;
            } else {
                ++i;
            }
        }
        for (size_t i = 0; i < throttled_.size();) {
            const uint32_t id = throttled_[i];
            const OpSlot &sl = slots_[id];
            if (!overDirtyLimit(st(sl.cg))) {
                throttled_[i] = throttled_.back();
                throttled_.pop_back();
                releaseOp(id);
                released = true;
            } else {
                ++i;
            }
        }
    }
    waking_ = false;
}

void
PageCache::finishWithDebtDelay(cgroup::CgroupId cg, DoneFn done)
{
    sim::Time delay = 0;
    if (blk::IoController *ctl = layer_.controller())
        delay = ctl->userspaceDelay(cg);
    if (delay > 0) {
        sim_.after(delay, std::move(done));
    } else {
        done();
    }
}

void
PageCache::publishTelemetry()
{
    stat::Telemetry &tel = layer_.telemetry();
    if (!tel.enabled())
        return;
    const sim::Time now = sim_.now();
    tel.emit(now, "wb", cgroup::kRoot, "dirty_bytes",
             static_cast<double>(totalDirty_));
    tel.emit(now, "wb", cgroup::kRoot, "wb_inflight_bytes",
             static_cast<double>(wbInflight_));
    tel.emit(now, "wb", cgroup::kRoot, "cached_bytes",
             static_cast<double>(totalCached_));
}

void
PageCache::saveState(sim::StateWriter &w) const
{
    sim::panicIf(waking_,
                 "PageCache::saveState during a wake pass");

    const std::vector<CacheCgroupStats> flat(stats_.begin(),
                                             stats_.end());
    w.putPods(flat);
    w.put(totalCached_);
    w.put(totalDirty_);
    w.put(wbInflight_);

    std::vector<DirtyExtent> q(queue_.size());
    for (size_t i = 0; i < queue_.size(); ++i)
        q[i] = queue_[i];
    w.putPods(q);

    uint64_t rs[4];
    rng_.getState(rs);
    w.putPods(rs, 4);

    w.put(static_cast<uint32_t>(slots_.size()));
    for (const OpSlot &sl : slots_) {
        w.put(sl.inUse);
        w.put(sl.target);
        w.put(sl.parkedAt);
        w.put(sl.cg);
        w.put(static_cast<uint8_t>(sl.kind));
        w.put(sl.nextFree);
        if (sl.inUse) {
            w.putBox(std::make_shared<const DoneFn>(
                sl.done.clone()));
        }
    }
    w.put(freeSlot_);
    w.putPods(throttled_);
    w.putPods(fsyncWaiters_);

    flushTimer_->saveState(w);
    w.put(kickPending_);
    sim_.events().saveHandle(w, kickEvent_);
}

void
PageCache::loadState(sim::StateReader &r)
{
    std::vector<CacheCgroupStats> flat;
    r.getPods(flat);
    stats_.assign(flat.begin(), flat.end());
    r.get(totalCached_);
    r.get(totalDirty_);
    r.get(wbInflight_);

    std::vector<DirtyExtent> q;
    r.getPods(q);
    queue_.assign(q);

    std::vector<uint64_t> rs;
    r.getPods(rs);
    rng_.setState(rs.data());

    const auto n = r.get<uint32_t>();
    slots_.resize(n);
    for (OpSlot &sl : slots_) {
        r.get(sl.inUse);
        r.get(sl.target);
        r.get(sl.parkedAt);
        r.get(sl.cg);
        sl.kind = static_cast<OpKind>(r.get<uint8_t>());
        r.get(sl.nextFree);
        if (sl.inUse)
            sl.done = r.getBoxAs<DoneFn>()->clone();
        else
            sl.done.reset();
    }
    r.get(freeSlot_);
    r.getPods(throttled_);
    r.getPods(fsyncWaiters_);

    flushTimer_->loadState(r);
    r.get(kickPending_);
    kickEvent_ = sim_.events().loadHandle(r);
}

} // namespace iocost::mm
