#include "mm/memory_manager.hh"

#include <algorithm>
#include <memory>

namespace iocost::mm {

MemoryManager::MemoryManager(sim::Simulator &sim,
                             blk::BlockLayer &layer, MemoryConfig cfg)
    : sim_(sim), layer_(layer), cfg_(cfg), rng_(sim.forkRng())
{
    kswapdTimer_.emplace(sim_, cfg_.kswapdInterval,
                         [this] { kswapd(); });
    kswapdTimer_->start();
}

MemCgroupStats &
MemoryManager::st(cgroup::CgroupId cg)
{
    if (cg >= stats_.size())
        stats_.resize(cg + 1);
    return stats_[cg];
}

const MemCgroupStats &
MemoryManager::stats(cgroup::CgroupId cg) const
{
    static const MemCgroupStats empty;
    if (cg >= stats_.size())
        return empty;
    return stats_[cg];
}

void
MemoryManager::setProtection(cgroup::CgroupId cg, uint64_t bytes)
{
    st(cg).protectedBytes = bytes;
}

namespace {

/** Reclaim weight of one cgroup: unprotected resident bytes, with
 *  recently touched (hot) cgroups strongly discounted. */
double
reclaimWeight(const MemCgroupStats &s, sim::Time now,
              const MemoryConfig &cfg)
{
    if (s.resident == 0)
        return 0.0;
    const uint64_t exposed = s.resident > s.protectedBytes
                                 ? s.resident - s.protectedBytes
                                 : 0;
    if (exposed == 0)
        return 0.0;
    const bool hot = now - s.lastTouch < cfg.activeWindow;
    return static_cast<double>(exposed) *
           (hot ? cfg.activeProtection : 1.0);
}

} // namespace

cgroup::CgroupId
MemoryManager::pickVictim()
{
    // Weighted sample over cgroups by exposed (unprotected) resident
    // size — a cheap stand-in for global LRU + memory.low: cold
    // leaked pages go first, protected working sets last.
    const sim::Time now = sim_.now();
    double total_weight = 0.0;
    for (cgroup::CgroupId cg = 0; cg < stats_.size(); ++cg)
        total_weight += reclaimWeight(stats_[cg], now, cfg_);
    if (total_weight <= 0.0) {
        // Everything protected: fall back to ignoring protection
        // (memory.low is a soft guarantee).
        cgroup::CgroupId biggest = cgroup::kNone;
        uint64_t worst = 0;
        for (cgroup::CgroupId cg = 0; cg < stats_.size(); ++cg) {
            if (stats_[cg].resident > worst) {
                worst = stats_[cg].resident;
                biggest = cg;
            }
        }
        return biggest;
    }

    double pick = rng_.uniform() * total_weight;
    for (cgroup::CgroupId cg = 0; cg < stats_.size(); ++cg) {
        const double w = reclaimWeight(stats_[cg], now, cfg_);
        if (w <= 0.0)
            continue;
        pick -= w;
        if (pick <= 0.0)
            return cg;
    }
    return cgroup::kNone;
}

bool
MemoryManager::oomKill()
{
    cgroup::CgroupId victim = cgroup::kNone;
    uint64_t worst = 0;
    for (cgroup::CgroupId cg = 0; cg < stats_.size(); ++cg) {
        const uint64_t usage =
            stats_[cg].resident + stats_[cg].swapped;
        if (usage > worst) {
            worst = usage;
            victim = cg;
        }
    }
    if (victim == cgroup::kNone || worst == 0)
        return false;

    MemCgroupStats &s = stats_[victim];
    totalResident_ -= s.resident;
    totalSwapped_ -= s.swapped;
    s.resident = 0;
    s.swapped = 0;
    ++s.oomKills;
    if (oomHandler_)
        oomHandler_(victim);
    return true;
}

uint64_t
MemoryManager::reclaim(uint64_t bytes,
                       const sim::AsyncBarrier::Ptr &barrier)
{
    uint64_t reclaimed = 0;
    while (reclaimed < bytes) {
        if (totalSwapped_ >= cfg_.swapBytes) {
            // Swap exhausted: reclaim cannot make progress.
            if (!oomKill())
                break;
            continue;
        }
        const cgroup::CgroupId victim = pickVictim();
        if (victim == cgroup::kNone)
            break;

        MemCgroupStats &vs = st(victim);
        const uint64_t chunk = std::min<uint64_t>(
            {bytes - reclaimed,
             static_cast<uint64_t>(cfg_.swapOutIoBytes),
             vs.resident, cfg_.swapBytes - totalSwapped_});
        if (chunk == 0)
            break;

        vs.resident -= chunk;
        vs.swapped += chunk;
        vs.swapOutBytes += chunk;
        totalResident_ -= chunk;
        totalSwapped_ += chunk;
        // The page stays in memory until the writeback completes.
        writebackBytes_ += chunk;
        reclaimed += chunk;

        // Swap-out write charged to the page owner (§3.5) or, for
        // stacks without MM integration, issued at root attribution
        // (historical kswapd behaviour). Swap writes are reasonably
        // sequential (swap-slot clustering).
        const cgroup::CgroupId charge =
            cfg_.chargeSwapToOwner ? victim : cgroup::kRoot;
        const uint64_t offset =
            cfg_.swapAreaOffset + swapCursor_;
        swapCursor_ = (swapCursor_ + chunk) % cfg_.swapBytes;

        blk::BioPtr bio;
        if (barrier) {
            barrier->add();
            bio = blk::Bio::make(
                blk::Op::Write, offset,
                static_cast<uint32_t>(chunk), charge,
                [this, chunk, barrier](const blk::Bio &) {
                    writebackBytes_ -= chunk;
                    barrier->arrive();
                });
        } else {
            bio = blk::Bio::make(
                blk::Op::Write, offset,
                static_cast<uint32_t>(chunk), charge,
                [this, chunk](const blk::Bio &) {
                    writebackBytes_ -= chunk;
                });
        }
        bio->swap = true;
        layer_.submit(std::move(bio));
    }
    return reclaimed;
}

void
MemoryManager::finishWithDebtDelay(cgroup::CgroupId cg, DoneFn done)
{
    sim::Time delay = 0;
    if (blk::IoController *ctl = layer_.controller())
        delay = ctl->userspaceDelay(cg);
    if (delay > 0) {
        sim_.after(delay, std::move(done));
    } else {
        done();
    }
}

void
MemoryManager::allocate(cgroup::CgroupId cg, uint64_t bytes,
                        DoneFn done)
{
    MemCgroupStats &s = st(cg);
    s.resident += bytes;
    s.lastTouch = sim_.now();
    totalResident_ += bytes;

    const auto high = static_cast<uint64_t>(
        cfg_.highWatermark * static_cast<double>(cfg_.totalBytes));
    const auto low = static_cast<uint64_t>(
        cfg_.lowWatermark * static_cast<double>(cfg_.totalBytes));

    // The barrier's callback is the operation's continuation: the
    // debt-delay hop, then the caller's done. One allocation for
    // counter and callback together.
    auto barrier = sim::AsyncBarrier::create(
        [this, cg, done = std::move(done)]() mutable {
            finishWithDebtDelay(cg, std::move(done));
        });

    if (effectiveResident() > high) {
        // Direct reclaim: the allocator stalls on a bounded batch of
        // swap-out IO (kswapd drains the rest in the background).
        const uint64_t want = std::min<uint64_t>(
            effectiveResident() - low,
            std::max(bytes, cfg_.directReclaimBatch));
        directReclaim(want, barrier);
    }
    barrier->arrive(); // the issuer's reference
}

void
MemoryManager::directReclaim(uint64_t want,
                             const sim::AsyncBarrier::Ptr &barrier)
{
    if (writebackBytes_ <= cfg_.maxWriteback) {
        reclaim(want, barrier);
        return;
    }
    // Writeback congested: the reclaimer sleeps until the in-flight
    // swap writes drain, then retries. A throttled swap-write path
    // therefore stalls every direct reclaimer on the host.
    barrier->add();
    auto retry = sim::AsyncLoop::spawn(
        [this, want, barrier](sim::AsyncLoop &loop) {
            if (writebackBytes_ <= cfg_.maxWriteback) {
                reclaim(want, barrier);
                barrier->arrive();
                return;
            }
            sim_.after(cfg_.congestionWait,
                       [keep = loop.self()] { keep->step(); });
        });
    sim_.after(cfg_.congestionWait,
               [keep = std::move(retry)] { keep->step(); });
}

void
MemoryManager::touch(cgroup::CgroupId cg, uint64_t bytes, DoneFn done)
{
    MemCgroupStats &s = st(cg);
    s.lastTouch = sim_.now();

    const uint64_t footprint = s.resident + s.swapped;
    uint64_t fault_bytes = 0;
    if (footprint > 0 && s.swapped > 0) {
        const double swapped_frac =
            static_cast<double>(s.swapped) /
            static_cast<double>(footprint);
        fault_bytes = std::min<uint64_t>(
            s.swapped, static_cast<uint64_t>(
                           swapped_frac *
                           static_cast<double>(
                               std::min(bytes, footprint))));
    }

    auto barrier = sim::AsyncBarrier::create(
        [this, cg, done = std::move(done)]() mutable {
            finishWithDebtDelay(cg, std::move(done));
        });

    if (fault_bytes > 0) {
        // Fault the swapped portion back in: page-in reads charged
        // to the faulting cgroup as ordinary throttleable IO.
        s.swapped -= fault_bytes;
        s.resident += fault_bytes;
        s.pageInBytes += fault_bytes;
        totalSwapped_ -= fault_bytes;
        totalResident_ += fault_bytes;

        uint64_t left = fault_bytes;
        while (left > 0) {
            const uint32_t chunk = static_cast<uint32_t>(
                std::min<uint64_t>(left, cfg_.pageInIoBytes));
            left -= chunk;
            const uint64_t offset =
                cfg_.swapAreaOffset +
                rng_.below(cfg_.swapBytes);
            barrier->add();
            blk::BioPtr bio = blk::Bio::make(
                blk::Op::Read, offset, chunk, cg,
                [barrier](const blk::Bio &) {
                    barrier->arrive();
                });
            layer_.submit(std::move(bio));
        }

        // Faulting back in can itself push usage over the high
        // watermark; the faulting thread then enters direct reclaim
        // and synchronously waits for the swap-out writes — which
        // are charged to the *page owner's* cgroup. This is the
        // §3.5 priority-inversion hazard: if those writes are
        // throttled at the owner's pace, an innocent toucher stalls
        // behind the offender's budget.
        const auto high = static_cast<uint64_t>(
            cfg_.highWatermark *
            static_cast<double>(cfg_.totalBytes));
        const auto low = static_cast<uint64_t>(
            cfg_.lowWatermark *
            static_cast<double>(cfg_.totalBytes));
        if (effectiveResident() > high) {
            const uint64_t want = std::min<uint64_t>(
                effectiveResident() - low,
                std::max(fault_bytes, cfg_.directReclaimBatch));
            directReclaim(want, barrier);
        }
    }

    barrier->arrive(); // the issuer's reference
}

void
MemoryManager::free(cgroup::CgroupId cg, uint64_t bytes)
{
    MemCgroupStats &s = st(cg);
    const uint64_t from_resident = std::min(bytes, s.resident);
    s.resident -= from_resident;
    totalResident_ -= from_resident;
    bytes -= from_resident;
    const uint64_t from_swap = std::min(bytes, s.swapped);
    s.swapped -= from_swap;
    totalSwapped_ -= from_swap;
}

void
MemoryManager::kswapd()
{
    const auto low = static_cast<uint64_t>(
        cfg_.lowWatermark * static_cast<double>(cfg_.totalBytes));
    if (writebackBytes_ > cfg_.maxWriteback)
        return; // writeback congested; wait for the device
    if (effectiveResident() > low && totalResident_ > 0) {
        const uint64_t want = std::min<uint64_t>(
            {cfg_.kswapdBatch, effectiveResident() - low,
             totalResident_});
        reclaim(want, nullptr);
    }
}

} // namespace iocost::mm
