/**
 * @file
 * Simplified memory-management subsystem.
 *
 * Models the slice of Linux MM that interacts with IO control
 * (paper §3.5, Figs. 14/15/17):
 *
 *  - per-cgroup resident and swapped page accounting;
 *  - background (kswapd-style) and direct reclaim that pick victim
 *    pages from *cold* cgroups and emit swap-out writes **charged to
 *    the page owner** with the bio swap flag set — the attribution
 *    that creates the priority-inversion hazard IOCost's debt
 *    mechanism resolves;
 *  - page faults: touching partially-swapped memory emits page-in
 *    reads charged to the *faulting* cgroup as ordinary throttleable
 *    IO (this is how thrashing slows a cgroup down);
 *  - an OOM killer invoked when reclaim cannot make progress;
 *  - the return-to-userspace debt hook: after every allocate/touch,
 *    the installed controller is asked for a userspace delay for the
 *    cgroup, which is added to the operation's stall.
 *
 * All operations are asynchronous: callers pass a completion
 * callback fired once any reclaim/fault IO and debt stalls resolved.
 */

#ifndef IOCOST_MM_MEMORY_MANAGER_HH
#define IOCOST_MM_MEMORY_MANAGER_HH

#include <cstdint>
#include <deque>
#include <functional>
#include <optional>

#include "blk/block_layer.hh"
#include "cgroup/cgroup_tree.hh"
#include "sim/async.hh"
#include "sim/rng.hh"
#include "sim/simulator.hh"

namespace iocost::mm {

/** Static MM configuration. */
struct MemoryConfig
{
    /** Physical memory size. */
    uint64_t totalBytes = 8ull << 30;

    /** Swap device capacity. */
    uint64_t swapBytes = 16ull << 30;

    /** Background reclaim starts above this fraction of total. */
    double lowWatermark = 0.96;

    /** Allocations stall in direct reclaim above this fraction. */
    double highWatermark = 0.99;

    /** Background reclaim batch per wakeup. */
    uint64_t kswapdBatch = 16ull << 20;

    /** Background reclaim wakeup interval. */
    sim::Time kswapdInterval = 5 * sim::kMsec;

    /**
     * Direct-reclaim batch: an allocator over the high watermark
     * synchronously reclaims (and waits for) about this much, like
     * the kernel's SWAP_CLUSTER_MAX-bounded direct reclaim; kswapd
     * handles the bulk asynchronously.
     */
    uint64_t directReclaimBatch = 4ull << 20;

    /** Size of one swap-out write bio. */
    uint32_t swapOutIoBytes = 256 * 1024;

    /** Size of one page-in (fault) read bio. */
    uint32_t pageInIoBytes = 64 * 1024;

    /**
     * Victim-selection protection: cgroups touched within this
     * window have their reclaim weight scaled down by
     * activeProtection.
     */
    sim::Time activeWindow = 1 * sim::kSec;
    double activeProtection = 0.1;

    /**
     * Writeback congestion limit: reclaim stops issuing (and direct
     * reclaimers sleep-wait, the kernel's throttle_vm_writeout)
     * while more than this much swap writeback is in flight. This
     * is where a throttled swap-write path turns into memory-
     * allocation stalls for everyone.
     */
    uint64_t maxWriteback = 64ull << 20;

    /** Congestion re-check interval for sleeping reclaimers. */
    sim::Time congestionWait = 2 * sim::kMsec;

    /** Byte offset region where swap lives on the device. */
    uint64_t swapAreaOffset = 1ull << 40;

    /**
     * Whether swap-out writes are charged to the page owner's
     * cgroup (cgroup-writeback + MM-integrated controllers, §3.5)
     * or issued at root attribution like historical kswapd IO —
     * which is what controllers without memory-management
     * integration actually see, and why a reclaim flood runs at
     * root priority under them.
     */
    bool chargeSwapToOwner = true;
};

/** Per-cgroup MM counters, exposed for benches and tests. */
struct MemCgroupStats
{
    uint64_t resident = 0;
    uint64_t swapped = 0;
    uint64_t swapOutBytes = 0;
    uint64_t pageInBytes = 0;
    uint64_t oomKills = 0;
    sim::Time lastTouch = 0;
    /** memory.low-style reclaim protection. */
    uint64_t protectedBytes = 0;
};

/**
 * The memory manager.
 */
class MemoryManager
{
  public:
    /** Callback invoked when an MM operation's stall resolves. */
    using DoneFn = std::function<void()>;

    /** Invoked when the OOM killer selects a victim. */
    using OomFn = std::function<void(cgroup::CgroupId)>;

    MemoryManager(sim::Simulator &sim, blk::BlockLayer &layer,
                  MemoryConfig cfg);

    /**
     * Allocate (and implicitly touch) @p bytes for @p cg. May enter
     * direct reclaim; @p done fires when the allocation would have
     * returned to userspace (including any controller debt delay).
     */
    void allocate(cgroup::CgroupId cg, uint64_t bytes, DoneFn done);

    /**
     * Touch @p bytes of @p cg's memory, uniformly across its
     * resident+swapped footprint. Swapped portions fault in via
     * page-in reads; @p done fires when all faults completed.
     */
    void touch(cgroup::CgroupId cg, uint64_t bytes, DoneFn done);

    /** Release @p bytes (resident first, then swap). */
    void free(cgroup::CgroupId cg, uint64_t bytes);

    /** Install the OOM victim callback. */
    void setOomHandler(OomFn fn) { oomHandler_ = std::move(fn); }

    /**
     * Protect the first @p bytes of @p cg's resident memory from
     * reclaim (cgroup v2 memory.low): only the excess is considered
     * by victim selection.
     */
    void setProtection(cgroup::CgroupId cg, uint64_t bytes);

    /** Per-cgroup counters. */
    const MemCgroupStats &stats(cgroup::CgroupId cg) const;

    /** Total resident bytes across all cgroups. */
    uint64_t totalResident() const { return totalResident_; }

    /** Bytes under swap writeback (still occupying memory). */
    uint64_t underWriteback() const { return writebackBytes_; }

    /**
     * Memory effectively in use: resident plus pages whose swap
     * write has been issued but not completed — they are freed
     * only when the IO finishes, which is how throttled swap IO
     * throttles reclaim progress itself.
     */
    uint64_t
    effectiveResident() const
    {
        return totalResident_ + writebackBytes_;
    }

    /** Total swapped bytes across all cgroups. */
    uint64_t totalSwapped() const { return totalSwapped_; }

    /** The static configuration. */
    const MemoryConfig &config() const { return cfg_; }

  private:
    MemCgroupStats &st(cgroup::CgroupId cg);

    /** Reclaim up to @p bytes; returns bytes of swap-out IO issued.
     *  When @p barrier is set, each swap write registers with it and
     *  arrives on completion (null for fire-and-forget kswapd IO). */
    uint64_t reclaim(uint64_t bytes,
                     const sim::AsyncBarrier::Ptr &barrier);

    /** Pick the next victim cgroup, cold-biased. */
    cgroup::CgroupId pickVictim();

    /** Run the OOM killer; @return true if memory was freed. */
    bool oomKill();

    /** Background reclaim tick. */
    void kswapd();

    /** Direct reclaim with writeback-congestion sleep-wait. */
    void directReclaim(uint64_t want,
                       const sim::AsyncBarrier::Ptr &barrier);

    /** Apply the controller's return-to-userspace delay, then done. */
    void finishWithDebtDelay(cgroup::CgroupId cg, DoneFn done);

    sim::Simulator &sim_;
    blk::BlockLayer &layer_;
    MemoryConfig cfg_;
    sim::Rng rng_;

    std::deque<MemCgroupStats> stats_;
    uint64_t totalResident_ = 0;
    uint64_t totalSwapped_ = 0;
    uint64_t writebackBytes_ = 0;
    uint64_t swapCursor_ = 0;

    OomFn oomHandler_;
    std::optional<sim::PeriodicTimer> kswapdTimer_;
};

} // namespace iocost::mm

#endif // IOCOST_MM_MEMORY_MANAGER_HH
