/**
 * @file
 * Sweep execution: one workload + device stream, K controller lanes.
 *
 * A sweep evaluates K controller configurations against *identical*
 * submissions and device outcomes (common random numbers). One
 * generator host runs the workload and the real device model; a
 * pass-through tap on its block layer clones every submitted bio
 * into K shadow lanes. Each lane is a full controller stack — its
 * own cgroup tree, block layer, and controller — backed by a
 * ReplayDevice that completes each (bio id, attempt) with the
 * duration and fault status the generator's device recorded in the
 * shared ServiceLog.
 *
 * Shared vs per-lane state:
 *  - shared: the workload arrival stream, the device-model service
 *    times and fault draws (one RNG stream, drawn once);
 *  - per-lane: throttling decisions, queueing timing, vrate state,
 *    per-cgroup stats, telemetry. A lane's bio reaches its device
 *    when *its* controller releases it, so queue waits diverge while
 *    the underlying service durations stay common.
 *
 * K = 1 at the top level is a degenerate sweep and delegates to a
 * plain Host verbatim (same controller, merging on, no log): the
 * single-config path has zero observation overhead and its output is
 * byte-identical to a hand-built Host. Inside a partitioned K >= 2
 * sweep every group uses shadow semantics — including singleton
 * groups — so per-config outputs never depend on how configs were
 * split across threads.
 *
 * Back-merging is disabled on every sweep layer: a merge rewrites
 * bio identity (the absorbed bio never reaches the device), which
 * would break the id-keyed outcome replay.
 */

#ifndef IOCOST_HOST_SWEEP_HH
#define IOCOST_HOST_SWEEP_HH

#include <algorithm>
#include <atomic>
#include <cstdint>
#include <deque>
#include <exception>
#include <functional>
#include <memory>
#include <optional>
#include <string>
#include <thread>
#include <type_traits>
#include <vector>

#include "blk/block_layer.hh"
#include "blk/service_log.hh"
#include "controllers/factory.hh"
#include "core/iocost.hh"
#include "device/replay_device.hh"
#include "host/fused_observer.hh"
#include "host/host.hh"
#include "sim/simulator.hh"

namespace iocost::host {

class TapController;

/** Sweep assembly options. */
struct SweepOptions
{
    /**
     * One controller spec line per lane (parseControllerSpec
     * grammar). Construction throws std::invalid_argument on a
     * malformed or empty list.
     */
    std::vector<std::string> specs;

    /**
     * Device factory for the generator (and, via runSweep, for every
     * group's generator — it must be safe to call from multiple
     * threads, i.e. capture no mutable shared state).
     */
    std::function<std::unique_ptr<blk::BlockDevice>(sim::Simulator &)>
        makeDevice;

    /** Fault spec shared by the stream (FaultPlan::parse grammar). */
    std::string faults;
    uint64_t faultSeedMix = 0;

    /** Weights for the three top-level slices (mirrors HostOptions). */
    uint32_t workloadWeight = 500;
    uint32_t hostCriticalWeight = 100;
    uint32_t systemWeight = 50;

    /** Submission-path CPU model on the workload-facing layer. */
    bool submissionCpu = false;

    /** Telemetry sink for the generator stack (shadow mode only). */
    stat::TelemetrySink *generatorSink = nullptr;
    /**
     * Per-lane telemetry sinks: empty, or exactly one per spec
     * (nullptr entries leave that lane silent). In plain K = 1 mode
     * laneSinks[0] lands on the single host's layer.
     */
    std::vector<stat::TelemetrySink *> laneSinks;
    bool telemetryDetail = false;

    /** Pre-size the shared ServiceLog (expected total bios). */
    size_t reserveBios = 0;

    /**
     * Applied to each parsed spec before the controller is built
     * (e.g. injecting the device-profile cost model into iocost
     * configs that carry no model keys). Keyed on the spec line, not
     * a lane index, so it is partition-invariant by construction;
     * must be thread-safe under runSweep.
     */
    std::function<void(const std::string &line,
                       controllers::ControllerSpec &spec)>
        tweakSpec;

    /**
     * Use shadow semantics even for a single config. runSweep sets
     * this on every group of a K >= 2 sweep so singleton groups match
     * multi-lane groups bit for bit.
     */
    bool forceShadow = false;

    /**
     * Run lockstep iocost lanes through the FusedObserver fast path
     * (one K-wide charge loop, bio-less in-flight tracking,
     * fork-on-divergence). Results are byte-identical either way —
     * this exists so benches and tests can compare against the
     * full-lane path. Ignored (off) when lanes exceed 64, detail
     * telemetry is on, or no lane runs iocost.
     */
    bool fusedObserver = true;
};

/**
 * One generator plus K controller lanes over a shared Simulator.
 *
 * Workloads are built against layer() (the generator); cgroups must
 * be created through addWorkload()/addSystemService() so every lane's
 * tree replicates the generator's ids. Results are read from
 * laneLayer(k) / laneIocost(k) after the caller runs the simulator.
 */
class SweepRunner
{
  public:
    SweepRunner(sim::Simulator &sim, SweepOptions opts);

    SweepRunner(const SweepRunner &) = delete;
    SweepRunner &operator=(const SweepRunner &) = delete;

    /** Number of lanes (== specs.size()). */
    size_t lanes() const { return plain_ ? 1 : lanes_.size(); }

    /** The spec line lane @p k runs. */
    const std::string &spec(size_t k) const { return opts_.specs[k]; }

    /** True when running shadow lanes (false = plain delegation). */
    bool shadow() const { return !plain_; }

    /** The workload-facing block layer (the generator's). */
    blk::BlockLayer &layer() { return generator_->layer(); }

    /** The generator host (device, cgroup ids, fault injector). */
    Host &generator() { return *generator_; }

    /** The shared outcome log (shadow mode; empty in plain mode). */
    const blk::ServiceLog &serviceLog() const { return log_; }

    /** Create a container cgroup in every tree; returns the id
     *  (identical across generator and lanes by construction). */
    cgroup::CgroupId addWorkload(const std::string &name,
                                 uint32_t weight = 100);

    /** Create a service cgroup in every tree. */
    cgroup::CgroupId addSystemService(const std::string &name,
                                      uint32_t weight = 100);

    /** Lane @p k's block layer (per-cgroup stats, counters). Reads
     *  are a flush point for the fused path's deferred accounting. */
    blk::BlockLayer &
    laneLayer(size_t k)
    {
        if (fused_)
            fused_->flushDeferred();
        return plain_ ? generator_->layer() : lanes_[k].layer;
    }

    /** Lane @p k's IoCost, or nullptr for other mechanisms. Reads
     *  are a flush point for the fused path's deferred accounting. */
    core::IoCost *
    laneIocost(size_t k)
    {
        if (fused_)
            fused_->flushDeferred();
        return plain_ ? generator_->iocost() : lanes_[k].iocost;
    }

    /** Reset generator and lane per-cgroup stats (warmup cut). */
    void resetStats();

    /** The fused fast-path observer, or nullptr when disabled
     *  (plain mode, detail telemetry, no iocost lanes, opt-out). */
    const FusedObserver *
    fusedObserver() const
    {
        return fused_.get();
    }

    /** Workload cgroups created so far, in creation order. Lane ids
     *  equal generator ids, so one list serves every lane. */
    const std::vector<std::pair<std::string, cgroup::CgroupId>> &
    workloadCgroups() const
    {
        return workloadCgroups_;
    }

  private:
    friend class TapController;

    /** One shadow controller stack. Non-movable (the layer holds
     *  references into the struct), hence the deque below. */
    struct Lane
    {
        std::string specLine;
        cgroup::CgroupTree tree;
        device::ReplayDevice device;
        blk::BlockLayer layer;
        core::IoCost *iocost = nullptr;
        cgroup::CgroupId system;
        cgroup::CgroupId hostCritical;
        cgroup::CgroupId workload;

        Lane(sim::Simulator &sim, const blk::ServiceLog &log,
             uint32_t depth, std::string name,
             const SweepOptions &opts)
            : device(sim, log, depth, std::move(name)),
              layer(sim, device, tree),
              system(tree.create(cgroup::kRoot, "system.slice",
                                 opts.systemWeight)),
              hostCritical(tree.create(cgroup::kRoot,
                                       "hostcritical.slice",
                                       opts.hostCriticalWeight)),
              workload(tree.create(cgroup::kRoot, "workload.slice",
                                   opts.workloadWeight))
        {}
    };

    /**
     * Lanes sharing one planning period, driven by one timer that
     * runs their planning passes back to back — the K-way planner
     * math batches over a contiguous member array instead of K
     * interleaved timers, and each pass is allocation-free in steady
     * state (donor scratch lives in the instance).
     */
    struct PlanGroup
    {
        sim::Time period = 0;
        std::vector<core::IoCost *> members;
        std::optional<sim::PeriodicTimer> timer;
    };

    /**
     * One scheduled completion shared by every lane whose parked bio
     * resolved to the same service duration (in lockstep that is all
     * of them): K lane completions cost one simulator event instead
     * of K. Slots are pooled and freelisted, so the steady-state
     * replay loop never touches the allocator.
     */
    struct ReplayBatch
    {
        std::vector<device::ReplayDevice::Resolved> items;
        sim::Time duration = 0;
        uint32_t nextFree = kNoBatch;
    };
    static constexpr uint32_t kNoBatch = UINT32_MAX;

    /** Clone one generator submission into every lane (id lockstep). */
    void cloneToLanes(const blk::Bio &bio);
    /** The generator delivered @p bio's final completion. */
    void onGeneratorFinal(const blk::Bio &bio);
    /** ServiceLog append/close: resolve parked bios in every lane
     *  and schedule the batched completions. */
    void onLogEvent(uint64_t id);
    uint32_t allocBatch();
    void fireBatch(uint32_t slot);

    sim::Simulator &sim_;
    SweepOptions opts_;
    bool plain_ = false;
    blk::ServiceLog log_;
    std::unique_ptr<Host> generator_;
    std::deque<Lane> lanes_;
    std::deque<PlanGroup> planGroups_;
    std::vector<std::pair<std::string, cgroup::CgroupId>>
        workloadCgroups_;
    std::vector<device::ReplayDevice::Resolved> resolveScratch_;
    std::vector<ReplayBatch> batchPool_;
    uint32_t freeBatch_ = kNoBatch;
    std::unique_ptr<FusedObserver> fused_;
};

/**
 * Partitioned multi-config execution.
 *
 * Splits @p base.specs into up to @p jobs contiguous groups, runs
 * each group on its own thread with its own Simulator(@p seed) and
 * SweepRunner, and returns one collect() result per config in spec
 * order. Because every group re-runs the identical generator stream
 * (same seed, same body, fixed pass-through generator), per-config
 * results are byte-identical regardless of jobs or config order.
 *
 * @param body   body(sim, runner): build cgroups/workloads against
 *               the runner and run the simulator. Must behave
 *               identically for every group (it only sees the
 *               generator side).
 * @param collect collect(runner, lane, config): read lane results;
 *               `lane` indexes within the group, `config` globally.
 */
template <typename Body, typename Collect>
auto
runSweep(const SweepOptions &base, uint64_t seed, unsigned jobs,
         Body body, Collect collect)
    -> std::vector<std::invoke_result_t<Collect &, SweepRunner &,
                                        size_t, size_t>>
{
    using Result = std::invoke_result_t<Collect &, SweepRunner &,
                                        size_t, size_t>;
    const size_t total = base.specs.size();
    if (total == 0)
        return {};
    const size_t groups =
        std::min<size_t>(jobs == 0 ? 1 : jobs, total);

    std::vector<std::optional<Result>> slots(total);
    std::vector<std::exception_ptr> errors(groups);

    auto run_group = [&](size_t g) {
        try {
            const size_t lo = total * g / groups;
            const size_t hi = total * (g + 1) / groups;
            SweepOptions opts = base;
            opts.specs.assign(base.specs.begin() +
                                  static_cast<std::ptrdiff_t>(lo),
                              base.specs.begin() +
                                  static_cast<std::ptrdiff_t>(hi));
            if (!base.laneSinks.empty()) {
                opts.laneSinks.assign(
                    base.laneSinks.begin() +
                        static_cast<std::ptrdiff_t>(lo),
                    base.laneSinks.begin() +
                        static_cast<std::ptrdiff_t>(hi));
            }
            // Singleton groups of a multi-config sweep keep shadow
            // semantics: partitioning must not change results.
            opts.forceShadow = base.forceShadow || total > 1;
            sim::Simulator sim(seed);
            SweepRunner runner(sim, std::move(opts));
            body(sim, runner);
            for (size_t k = 0; k < hi - lo; ++k)
                slots[lo + k].emplace(collect(runner, k, lo + k));
        } catch (...) {
            errors[g] = std::current_exception();
        }
    };

    if (groups == 1) {
        run_group(0);
    } else {
        std::vector<std::thread> pool;
        pool.reserve(groups);
        for (size_t g = 0; g < groups; ++g)
            pool.emplace_back(run_group, g);
        for (std::thread &t : pool)
            t.join();
    }
    // Deterministic error reporting: lowest group index wins (same
    // discipline as the fleet's shard pool).
    for (size_t g = 0; g < groups; ++g) {
        if (errors[g])
            std::rethrow_exception(errors[g]);
    }

    std::vector<Result> out;
    out.reserve(total);
    for (std::optional<Result> &r : slots)
        out.push_back(std::move(*r));
    return out;
}

/**
 * Paired-CRN execution for closed-loop scenarios.
 *
 * Some sweeps cannot run as shadow lanes: when the workload reacts
 * to the controller's decisions (memory-management agents, latency
 * servers with feedback), the submission stream itself diverges per
 * config and there is no shared stream to tap. The common-random-
 * numbers discipline still applies — every config must be evaluated
 * with the *same seeds* so config deltas cancel the workload noise —
 * but each config needs its own full run.
 *
 * runPaired runs run(config) for each config index on a pool of up
 * to @p jobs threads (atomic-counter work stealing) and returns the
 * results in config order. @p run must derive all randomness from
 * the config-independent seeds it closes over (that is what makes
 * the runs "paired") and must be safe to call concurrently.
 * Exceptions are captured per config and the lowest config index is
 * rethrown after the pool drains, so failures are deterministic
 * regardless of jobs.
 */
template <typename Run>
auto
runPaired(size_t configs, unsigned jobs, Run run)
    -> std::vector<std::invoke_result_t<Run &, size_t>>
{
    using Result = std::invoke_result_t<Run &, size_t>;
    if (configs == 0)
        return {};
    const size_t workers = std::min<size_t>(
        jobs == 0 ? 1 : jobs, configs);

    std::vector<std::optional<Result>> slots(configs);
    std::vector<std::exception_ptr> errors(configs);
    std::atomic<size_t> next{0};

    auto worker = [&] {
        for (;;) {
            const size_t c =
                next.fetch_add(1, std::memory_order_relaxed);
            if (c >= configs)
                return;
            try {
                slots[c].emplace(run(c));
            } catch (...) {
                errors[c] = std::current_exception();
            }
        }
    };

    if (workers == 1) {
        worker();
    } else {
        std::vector<std::thread> pool;
        pool.reserve(workers);
        for (size_t w = 0; w < workers; ++w)
            pool.emplace_back(worker);
        for (std::thread &t : pool)
            t.join();
    }
    for (size_t c = 0; c < configs; ++c) {
        if (errors[c])
            std::rethrow_exception(errors[c]);
    }

    std::vector<Result> out;
    out.reserve(configs);
    for (std::optional<Result> &r : slots)
        out.push_back(std::move(*r));
    return out;
}

} // namespace iocost::host

#endif // IOCOST_HOST_SWEEP_HH
