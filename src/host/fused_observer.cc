#include "host/fused_observer.hh"

#include <algorithm>

#include "sim/logging.hh"
#include "stat/telemetry.hh"

namespace iocost::host {

namespace {

/** Same epsilon the iocost issue path uses for weight guards. */
constexpr double kEps = 1e-9;

/** Round up to a power of two (minimum 8). */
size_t
pow2AtLeast(size_t n)
{
    size_t cap = 8;
    while (cap < n)
        cap *= 2;
    return cap;
}

bool
sameModel(const core::CostModel &a, const core::CostModel &b)
{
    return a.readBaseSeq() == b.readBaseSeq() &&
           a.readBaseRand() == b.readBaseRand() &&
           a.writeBaseSeq() == b.writeBaseSeq() &&
           a.writeBaseRand() == b.writeBaseRand() &&
           a.readNsPerByte() == b.readNsPerByte() &&
           a.writeNsPerByte() == b.writeNsPerByte();
}

} // namespace

FusedObserver::FusedObserver(sim::Simulator &sim,
                             blk::BlockLayer &generator_layer,
                             const blk::ServiceLog &log,
                             uint32_t queue_depth)
    : sim_(sim), generatorLayer_(generator_layer), log_(log)
{
    // A fused record lives strictly inside a device-slot lifetime,
    // so at most queue_depth records coexist; doubling keeps the
    // open-addressed table under 50% load. growRecords() still
    // exists as a safety valve — the invariant is structural, not
    // enforced.
    records_.resize(pow2AtLeast(static_cast<size_t>(queue_depth) * 2));
}

void
FusedObserver::addLane(blk::BlockLayer &layer,
                       device::ReplayDevice &dev, core::IoCost *ioc)
{
    sim::panicIf(lanes_.size() >= 64,
                 "FusedObserver: more than 64 lanes");
    LaneRef ln;
    ln.layer = &layer;
    ln.dev = &dev;
    ln.ioc = ioc;
    lanes_.push_back(ln);
}

void
FusedObserver::start()
{
    rebuildGroups();
    for (size_t k = 0; k < lanes_.size(); ++k) {
        LaneRef &ln = lanes_[k];
        ln.fused = ln.fusable;
        if (ln.fused) {
            fusedMask_ |= uint64_t{1} << k;
            refreshLaneCaches(ln);
        }
    }
}

FusedObserver::LaneCg &
FusedObserver::laneCg(LaneRef &ln, cgroup::CgroupId cg)
{
    if (static_cast<size_t>(cg) >= ln.cgs.size())
        ln.cgs.resize(static_cast<size_t>(cg) + 1);
    LaneCg &lc = ln.cgs[cg];
    if (lc.st == nullptr) {
        lc.st = &ln.ioc->iocg(cg);
        lc.hw = ln.ioc->tree_->hweightInuse(cg);
    }
    return lc;
}

void
FusedObserver::refreshLaneCaches(LaneRef &ln)
{
    if (ln.ioc == nullptr)
        return;
    ln.budgetCap = ln.ioc->budgetCap();
    for (size_t cg = 0; cg < ln.cgs.size(); ++cg) {
        if (ln.cgs[cg].st != nullptr) {
            ln.cgs[cg].hw = ln.ioc->tree_->hweightInuse(
                static_cast<cgroup::CgroupId>(cg));
        }
    }
}

void
FusedObserver::rebuildGroups()
{
    groups_.clear();
    for (LaneRef &ln : lanes_) {
        if (ln.ioc == nullptr)
            continue;
        // A cost program takes a materialized bio, so a lane running
        // one cannot fuse. Re-checked every boundary: programs and
        // models installed mid-run (setCostProgram/setModel) take
        // effect here, at the next planning boundary.
        ln.fusable = !ln.ioc->hasCostProgram();
        if (!ln.fusable)
            continue;
        uint32_t idx = UINT32_MAX;
        for (uint32_t g = 0;
             g < static_cast<uint32_t>(groups_.size()); ++g) {
            if (sameModel(groups_[g].rep->model(),
                          ln.ioc->model())) {
                idx = g;
                break;
            }
        }
        if (idx == UINT32_MAX) {
            groups_.push_back(CostGroup{ln.ioc, 0.0});
            idx = static_cast<uint32_t>(groups_.size() - 1);
        }
        ln.costGroup = idx;
    }
}

blk::BioPtr
FusedObserver::materialize(const blk::Bio &src, uint64_t id,
                           sim::Time submit_time,
                           double controller_scratch) const
{
    blk::BioPtr bio =
        blk::Bio::make(src.op, src.offset, src.size, src.cgroup);
    bio->swap = src.swap;
    bio->meta = src.meta;
    bio->wb = src.wb;
    bio->id = id;
    bio->submitTime = submit_time;
    bio->controllerScratch = controller_scratch;
    return bio;
}

blk::BioPtr
FusedObserver::materializeRecord(uint64_t id, const Record &rec) const
{
    blk::BioPtr bio =
        blk::Bio::make(rec.op, rec.offset, rec.size, rec.cg);
    bio->swap = rec.swap;
    bio->meta = rec.meta;
    bio->wb = rec.wb;
    bio->id = id;
    bio->submitTime = rec.time;
    // A fused bio dispatched the instant it was admitted.
    // controllerScratch is dead once past the issue path (only
    // waitq bios are re-read), so it need not be reconstructed.
    bio->dispatchTime = rec.time;
    return bio;
}

void
FusedObserver::onGeneratorBio(const blk::Bio &bio)
{
    const sim::Time now = sim_.now();
    totalLaneBios_ += lanes_.size();

    // One sequentiality classification per generator bio. Every
    // lane sees the identical per-cgroup stream in the same order,
    // so the lane-local Iocg lastEnd values always agree with this
    // shared one (fusedIssue still maintains them for forks).
    if (bio.cgroup >= lastEnd_.size())
        lastEnd_.resize(bio.cgroup + 1, UINT64_MAX);
    const bool sequential = bio.offset == lastEnd_[bio.cgroup];
    lastEnd_[bio.cgroup] = bio.offset + bio.size;

    // One cost evaluation per distinct model.
    for (CostGroup &g : groups_) {
        g.cost = static_cast<double>(
            g.rep->model().cost(bio.op, sequential, bio.size));
    }

    // Deferred acceptance accounting: one increment covers every
    // currently-fused lane. A lane forking below is flushed first,
    // inside diverge(), while it still counts as fused — it accepted
    // this bio either way (waitq park or real dispatch).
    if (fusedMask_ != 0) {
        ++submitScratch_;
        expectedNextId_ = bio.id + 1;
        scratchDirty_ = true;
    }

    const bool oddity = bio.swap || bio.meta || bio.wb;
    Cell *rec = nullptr;
    for (size_t k = 0; k < lanes_.size(); ++k) {
        LaneRef &ln = lanes_[k];
        if (!ln.fused) {
            // Full path: the lane runs its own controller stack.
            blk::BioPtr clone = blk::Bio::make(
                bio.op, bio.offset, bio.size, bio.cgroup);
            clone->swap = bio.swap;
            clone->meta = bio.meta;
            clone->wb = bio.wb;
            ln.layer->submit(std::move(clone));
            continue;
        }

        const double abs_cost = groups_[ln.costGroup].cost;
        core::IoCost *ioc = ln.ioc;
        LaneCg &lc = laneCg(ln, bio.cgroup);
        Iocg &st = *lc.st;

        // Straight-line issue: active cgroup, no debt, sane weight,
        // normal IO, budget available. Exactly onSubmit's mutations
        // for that case, against the cached pointer/weight. A fused
        // lane's waitqs are empty by construction (queuing forks),
        // so the waiting.empty() admission term is elided.
        if (!oddity && st.active && st.absDebt <= 0.0 &&
            lc.hw > kEps) {
            if (now > ioc->lastGvtimeUpdate_) {
                ioc->gvtime_ +=
                    static_cast<double>(
                        now - ioc->lastGvtimeUpdate_) *
                    ioc->vrate_;
                ioc->lastGvtimeUpdate_ = now;
            }
            st.lastIo = now;
            st.lastEnd =
                bio.offset + static_cast<uint64_t>(bio.size);
            const double floor = ioc->gvtime_ - ln.budgetCap;
            if (st.vtime < floor)
                st.vtime = floor;
            const double rel = abs_cost / lc.hw;
            if (ioc->gvtime_ - st.vtime >= rel) {
                st.vtime += rel;
                st.absUsage += abs_cost;
                st.statUsage += abs_cost;
                if (st.outstanding++ == 0)
                    st.busySince = now;
            } else if (!slowIssue(k, bio, abs_cost, now)) {
                // Over budget: the rescind-retry / queue decision
                // ran on the slow path (its leading mutations are
                // idempotent re-runs of the ones above) and the
                // lane forked + queued the bio.
                continue;
            }
        } else if (!slowIssue(k, bio, abs_cost, now)) {
            continue;
        }

        if (ln.layer->dispatchQueueDepth() == 0 &&
            ln.dev->fusedAcquire()) {
            if (rec == nullptr)
                rec = insertRecord(bio.id, bio, now);
            rec->rec.lanes |= uint64_t{1} << k;
            ++fusedLaneBios_;
            continue;
        }
        // Device saturated (or real bios parked behind it): fork
        // and run the layer's dispatch with a real bio — it counts
        // the queue-full event and parks, exactly like the full
        // path.
        diverge(k);
        ln.layer->dispatch(materialize(bio, bio.id, now, abs_cost));
    }
}

bool
FusedObserver::slowIssue(size_t k, const blk::Bio &bio,
                         double abs_cost, sim::Time now)
{
    LaneRef &ln = lanes_[k];
    const core::IoCost::FusedVerdict verdict = ln.ioc->fusedIssue(
        bio.cgroup, bio.offset, bio.size, bio.swap, bio.meta, bio.wb,
        abs_cost);
    // activate() and the rescind retry change the lane's weight
    // tree; re-read this lane's cached weights (rare path).
    refreshLaneCaches(ln);
    if (verdict == core::IoCost::FusedVerdict::Queued) {
        // Hard throttle: fork the lane, then park the bio on the
        // waitq exactly as onSubmit's tail would have.
        diverge(k);
        ln.ioc->fusedQueue(bio.cgroup,
                           materialize(bio, bio.id, now, abs_cost));
        return false;
    }
    return true;
}

void
FusedObserver::diverge(size_t k)
{
    LaneRef &ln = lanes_[k];
    // The departing lane must absorb the deferred window first —
    // flushDeferred() lands scratch on fused lanes only.
    flushDeferred();
    ln.fused = false;
    fusedMask_ &= ~(uint64_t{1} << k);
    if (recordCount_ == 0)
        return;
    // Materialize every fused in-flight request this lane is a
    // member of into its real pending table; their device slots
    // stay held (acquired at issue). Cleared-to-zero records stay
    // in the table until their log event consumes them.
    const uint64_t bit = uint64_t{1} << k;
    for (Cell &c : records_) {
        if (c.id == 0 || (c.rec.lanes & bit) == 0)
            continue;
        c.rec.lanes &= ~bit;
        ln.dev->adoptParked(materializeRecord(c.id, c.rec));
    }
}

void
FusedObserver::onLogEvent(uint64_t id)
{
    Cell *c = findRecord(id);
    if (c == nullptr)
        return;
    if (c->rec.lanes == 0) {
        // Every member lane forked since issue; nothing fused left.
        eraseRecord(id);
        return;
    }
    const blk::ServiceLog::Entry *e = log_.find(id, 0);
    if (e == nullptr && !log_.closed(id))
        return; // outcome still ahead of the log; stay parked
    if (e != nullptr && e->status == blk::BioStatus::Ok) {
        // Lockstep completion: one pooled event delivers all member
        // lanes' completions `duration` later. The record is
        // consumed now — the close(id) notification that follows
        // must not re-schedule it.
        const uint32_t slot = allocFire();
        firePool_[slot].rec = c->rec;
        firePool_[slot].duration =
            std::max<sim::Time>(1, e->duration);
        eraseRecord(id);
        sim_.at(sim_.now() + firePool_[slot].duration,
                [this, slot] { fireFused(slot); });
        return;
    }
    // Error outcome — or closed with no entries (the generator
    // expired the bio before its device took it): fork this record
    // only. The member lanes get real parked bios, and the caller's
    // per-lane resolve pass (running right after this) applies the
    // full path's retry/clamp/error machinery to them.
    const Record rec = c->rec;
    eraseRecord(id);
    for (uint64_t mask = rec.lanes; mask != 0; mask &= mask - 1) {
        const size_t k =
            static_cast<size_t>(__builtin_ctzll(mask));
        lanes_[k].dev->adoptParked(materializeRecord(id, rec));
    }
}

uint32_t
FusedObserver::allocFire()
{
    if (freeFire_ != kNoFire) {
        const uint32_t slot = freeFire_;
        freeFire_ = firePool_[slot].nextFree;
        return slot;
    }
    firePool_.emplace_back();
    return static_cast<uint32_t>(firePool_.size() - 1);
}

void
FusedObserver::fireFused(uint32_t slot)
{
    // Copy out and free the slot first: delivering completions can
    // drain parked bios into the replay device, and holding no
    // references keeps re-entrancy trivially safe.
    const Record rec = firePool_[slot].rec;
    const sim::Time d = firePool_[slot].duration;
    firePool_[slot].nextFree = freeFire_;
    freeFire_ = slot;

    const sim::Time now = sim_.now();
    const sim::Time total = now - rec.time;

    if (rec.lanes == fusedMask_) {
        // Homogeneous window: every fused lane is a member, so the
        // per-lane stats/histogram deltas are identical — record
        // them once into the deferred scratch. Only control state
        // (device slot, outstanding/busy, freed-slot drain) is
        // mutated per lane, at the real instant.
        ++completeScratch_;
        scratchDirty_ = true;
        if (static_cast<size_t>(rec.cg) >= statScratch_.size())
            statScratch_.resize(static_cast<size_t>(rec.cg) + 1);
        blk::CgroupIoStats &sc = statScratch_[rec.cg];
        if (rec.op == blk::Op::Read) {
            ++sc.reads;
            sc.readBytes += rec.size;
            periodReadScratch_.record(d);
        } else {
            ++sc.writes;
            sc.writeBytes += rec.size;
            if (rec.wb) {
                ++sc.wbWrites;
                sc.wbBytes += rec.size;
            }
            periodWriteScratch_.record(d);
        }
        sc.totalLatency.record(total);
        sc.deviceLatency.record(d);
        for (uint64_t mask = rec.lanes; mask != 0;
             mask &= mask - 1) {
            const size_t k =
                static_cast<size_t>(__builtin_ctzll(mask));
            LaneRef &ln = lanes_[k];
            ln.dev->fusedRelease();
            // Membership implies the slot was populated at issue.
            Iocg &st = *ln.cgs[rec.cg].st;
            if (st.outstanding > 0 && --st.outstanding == 0)
                st.busyAccum += now - st.busySince;
            // A retry of a forked record may be parked behind the
            // slot we just freed; drain it exactly when the full
            // path would (no-op when the FIFO is empty, the fused
            // steady state).
            if (ln.layer->dispatchQueueDepth() != 0)
                ln.layer->fusedCompleteDrain();
        }
        return;
    }

    // Mixed window: a lane re-fused after this record was issued,
    // so the members are a strict subset of the fused set and the
    // scratch cannot carry their delta. Deliver the accounting
    // directly, in full-path order: slot release, layer accounting,
    // controller completion, freed-slot drain.
    for (uint64_t mask = rec.lanes; mask != 0; mask &= mask - 1) {
        const size_t k =
            static_cast<size_t>(__builtin_ctzll(mask));
        LaneRef &ln = lanes_[k];
        ln.dev->fusedRelease();
        ln.layer->fusedCompleteStats(rec.op, rec.size, rec.cg,
                                     rec.wb, total, d);
        ln.ioc->fusedComplete(rec.cg, rec.op, d);
        ln.layer->fusedCompleteDrain();
    }
}

void
FusedObserver::flushDeferred()
{
    if (!scratchDirty_)
        return;
    scratchDirty_ = false;
    for (uint64_t mask = fusedMask_; mask != 0; mask &= mask - 1) {
        LaneRef &ln =
            lanes_[static_cast<size_t>(__builtin_ctzll(mask))];
        ln.layer->fusedApplyDeferred(submitScratch_,
                                     completeScratch_);
        // Guarded so the no-drift case builds no message string:
        // this runs per fused lane per flush window.
        if (submitScratch_ != 0 &&
            ln.layer->nextBioId() != expectedNextId_)
            sim::panicIf(true, "FusedObserver: lane bio id drift");
        for (size_t cg = 0; cg < statScratch_.size(); ++cg) {
            const blk::CgroupIoStats &sc = statScratch_[cg];
            if (sc.reads + sc.writes == 0)
                continue;
            ln.layer->fusedMergeStats(
                static_cast<cgroup::CgroupId>(cg), sc);
        }
        ln.ioc->periodReadLat_.merge(periodReadScratch_);
        ln.ioc->periodWriteLat_.merge(periodWriteScratch_);
    }
    submitScratch_ = 0;
    completeScratch_ = 0;
    for (blk::CgroupIoStats &sc : statScratch_) {
        if (sc.reads + sc.writes == 0)
            continue;
        sc.reads = sc.writes = 0;
        sc.readBytes = sc.writeBytes = 0;
        sc.wbWrites = sc.wbBytes = 0;
        sc.totalLatency.reset();
        sc.deviceLatency.reset();
    }
    periodReadScratch_.reset();
    periodWriteScratch_.reset();
}

void
FusedObserver::onPlanBoundary()
{
    rebuildGroups();
    size_t fused = 0;
    for (size_t k = 0; k < lanes_.size(); ++k) {
        LaneRef &ln = lanes_[k];
        if (ln.fused && !ln.fusable) {
            diverge(k); // a cost program appeared mid-run
        } else if (!ln.fused && ln.fusable &&
                   ln.ioc->fusedQuiescent() &&
                   ln.layer->dispatchQueueDepth() == 0) {
            // Reconverged: no throttled bios, no kick timers, no
            // parked dispatch FIFO. Real in-flight bios may still
            // resolve through the pending table — per-completion
            // accounting commutes within a timestamp, so mixing
            // them with new fused traffic is exact. The deferred
            // window is empty here (the caller flushed before
            // planning), so the rejoining lane inherits no stale
            // scratch; fused records still in flight carry a
            // smaller member mask and complete via the direct path.
            ln.fused = true;
            fusedMask_ |= uint64_t{1} << k;
        }
        if (ln.fused) {
            ++fused;
            // Planning may have changed vrate (budget cap) and
            // donation inuse weights on every lane.
            refreshLaneCaches(ln);
        }
    }

    stat::Telemetry &tel = generatorLayer_.telemetry();
    if (tel.enabled()) {
        const sim::Time now = sim_.now();
        tel.emit(now, "sweep", stat::kNoCgroup, "fused_lanes",
                 static_cast<double>(fused));
        tel.emit(now, "sweep", stat::kNoCgroup, "diverged_lanes",
                 static_cast<double>(lanes_.size() - fused));
    }
}

size_t
FusedObserver::cellIndex(uint64_t id) const
{
    // Fibonacci hashing, same rationale as ReplayDevice's table.
    return static_cast<size_t>(id * 0x9E3779B97F4A7C15ull) &
           (records_.size() - 1);
}

FusedObserver::Cell *
FusedObserver::findRecord(uint64_t id)
{
    if (recordCount_ == 0)
        return nullptr;
    const size_t mask = records_.size() - 1;
    size_t i = cellIndex(id);
    while (records_[i].id != id) {
        if (records_[i].id == 0)
            return nullptr;
        i = (i + 1) & mask;
    }
    return &records_[i];
}

FusedObserver::Cell *
FusedObserver::insertRecord(uint64_t id, const blk::Bio &bio,
                            sim::Time now)
{
    if ((recordCount_ + 1) * 2 > records_.size())
        growRecords();
    const size_t mask = records_.size() - 1;
    size_t i = cellIndex(id);
    while (records_[i].id != 0)
        i = (i + 1) & mask;
    Cell &c = records_[i];
    c.id = id;
    c.rec.lanes = 0;
    c.rec.offset = bio.offset;
    c.rec.size = bio.size;
    c.rec.op = bio.op;
    c.rec.swap = bio.swap;
    c.rec.meta = bio.meta;
    c.rec.wb = bio.wb;
    c.rec.cg = bio.cgroup;
    c.rec.time = now;
    ++recordCount_;
    return &c;
}

void
FusedObserver::eraseRecord(uint64_t id)
{
    const size_t mask = records_.size() - 1;
    size_t i = cellIndex(id);
    while (records_[i].id != id)
        i = (i + 1) & mask;

    // Backward-shift deletion (see ReplayDevice::takePending).
    size_t hole = i;
    size_t j = (hole + 1) & mask;
    while (records_[j].id != 0) {
        const size_t home = cellIndex(records_[j].id);
        if (((j - home) & mask) >= ((j - hole) & mask)) {
            records_[hole] = records_[j];
            records_[j].id = 0;
            hole = j;
        }
        j = (j + 1) & mask;
    }
    records_[hole].id = 0;
    --recordCount_;
}

void
FusedObserver::growRecords()
{
    std::vector<Cell> old = std::move(records_);
    records_.clear();
    records_.resize(old.size() * 2);
    recordCount_ = 0;
    for (Cell &c : old) {
        if (c.id == 0)
            continue;
        const size_t mask = records_.size() - 1;
        size_t i = cellIndex(c.id);
        while (records_[i].id != 0)
            i = (i + 1) & mask;
        records_[i] = c;
        ++recordCount_;
    }
}

} // namespace iocost::host
