#include "host/host.hh"

namespace iocost::host {

Host::Host(sim::Simulator &sim,
           std::unique_ptr<blk::BlockDevice> device, HostOptions opts)
    : sim_(sim), device_(std::move(device))
{
    system_ = tree_.create(cgroup::kRoot, "system.slice",
                           opts.systemWeight);
    hostCritical_ = tree_.create(cgroup::kRoot, "hostcritical.slice",
                                 opts.hostCriticalWeight);
    workload_ = tree_.create(cgroup::kRoot, "workload.slice",
                             opts.workloadWeight);

    layer_ = std::make_unique<blk::BlockLayer>(sim_, *device_, tree_);
    layer_->setSubmissionCpuEnabled(opts.submissionCpu);
    if (opts.telemetrySink != nullptr)
        layer_->setTelemetrySink(opts.telemetrySink);
    layer_->telemetry().setDetail(opts.telemetryDetail);
    layer_->setController(controllers::makeController(
        opts.controller));

    if (opts.enableMemory) {
        mm_ = std::make_unique<mm::MemoryManager>(sim_, *layer_,
                                                  opts.memoryConfig);
    }
}

} // namespace iocost::host
