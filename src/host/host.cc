#include "host/host.hh"

namespace iocost::host {

Host::Host(sim::Simulator &sim,
           std::unique_ptr<blk::BlockDevice> device, HostOptions opts)
    : sim_(sim), device_(std::move(device))
{
    system_ = tree_.create(cgroup::kRoot, "system.slice",
                           opts.systemWeight);
    hostCritical_ = tree_.create(cgroup::kRoot, "hostcritical.slice",
                                 opts.hostCriticalWeight);
    workload_ = tree_.create(cgroup::kRoot, "workload.slice",
                             opts.workloadWeight);

    layer_ = std::make_unique<blk::BlockLayer>(sim_, *device_, tree_);
    layer_->setSubmissionCpuEnabled(opts.submissionCpu);
    if (opts.telemetrySink != nullptr)
        layer_->setTelemetrySink(opts.telemetrySink);
    layer_->telemetry().setDetail(opts.telemetryDetail);

    if (!opts.faults.empty()) {
        // Throws std::invalid_argument on a malformed spec — before
        // any IO runs, so a bad --faults string fails loudly.
        sim::FaultPlan plan = sim::FaultPlan::parse(opts.faults);
        blk::BlockLayer::RetryPolicy retry;
        retry.maxRetries = plan.maxRetries;
        retry.backoffBase = plan.retryBackoffBase;
        retry.bioTimeout = plan.bioTimeout;
        layer_->setRetryPolicy(retry);
        faults_ = std::make_unique<sim::FaultInjector>(
            std::move(plan), opts.faultSeedMix);
        device_->setFaultInjector(faults_.get());
    }

    layer_->setController(controllers::makeController(
        opts.controller));

    if (opts.enableMemory) {
        mm_ = std::make_unique<mm::MemoryManager>(sim_, *layer_,
                                                  opts.memoryConfig);
    }
}

} // namespace iocost::host
