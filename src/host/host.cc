#include "host/host.hh"

#include "sim/logging.hh"

namespace iocost::host {

Host::Host(sim::Simulator &sim,
           std::unique_ptr<blk::BlockDevice> device, HostOptions opts)
    : sim_(sim), device_(std::move(device))
{
    system_ = tree_.create(cgroup::kRoot, "system.slice",
                           opts.systemWeight);
    hostCritical_ = tree_.create(cgroup::kRoot, "hostcritical.slice",
                                 opts.hostCriticalWeight);
    workload_ = tree_.create(cgroup::kRoot, "workload.slice",
                             opts.workloadWeight);

    layer_ = std::make_unique<blk::BlockLayer>(sim_, *device_, tree_);
    layer_->setSubmissionCpuEnabled(opts.submissionCpu);
    if (opts.telemetrySink != nullptr)
        layer_->setTelemetrySink(opts.telemetrySink);
    layer_->telemetry().setDetail(opts.telemetryDetail);

    if (!opts.faults.empty() || opts.installFaultInjector) {
        // Throws std::invalid_argument on a malformed spec — before
        // any IO runs, so a bad --faults string fails loudly. An
        // empty spec (installFaultInjector) parses to the empty
        // plan: zero windows, default retry policy.
        sim::FaultPlan plan = sim::FaultPlan::parse(opts.faults);
        blk::BlockLayer::RetryPolicy retry;
        retry.maxRetries = plan.maxRetries;
        retry.backoffBase = plan.retryBackoffBase;
        retry.bioTimeout = plan.bioTimeout;
        layer_->setRetryPolicy(retry);
        faults_ = std::make_unique<sim::FaultInjector>(
            std::move(plan), opts.faultSeedMix);
        device_->setFaultInjector(faults_.get());
    }

    layer_->setController(controllers::makeController(
        opts.controller));

    if (opts.enableMemory) {
        mm_ = std::make_unique<mm::MemoryManager>(sim_, *layer_,
                                                  opts.memoryConfig);
    }
    if (opts.enablePageCache) {
        pagecache_ = std::make_unique<mm::PageCache>(
            sim_, *layer_, opts.pageCacheConfig);
    }
}

HostSnapshot
Host::snapshot() const
{
    sim::panicIf(mm_ != nullptr,
                 "Host::snapshot: the memory manager is not "
                 "snapshottable (async-loop closures alias "
                 "shared_ptr state); build what-if scenarios "
                 "without enableMemory");

    // Tape order is the restore order; every layer appears exactly
    // once. The simulator (event arena + clock + root RNG) goes
    // first so a restore rebuilds the arena before any component
    // rebinds its EventHandles against it.
    sim::StateWriter w;
    sim_.saveState(w);
    tree_.saveState(w);
    device_->saveState(w);
    layer_->saveState(w);
    w.put(faults_ != nullptr);
    if (faults_)
        faults_->saveState(w);
    w.put(pagecache_ != nullptr);
    if (pagecache_)
        pagecache_->saveState(w);
    w.put(static_cast<uint32_t>(tracked_.size()));
    for (const sim::Snapshottable *obj : tracked_)
        obj->saveState(w);

    HostSnapshot snap;
    snap.image_ = std::move(w).finish();
    return snap;
}

void
Host::restore(const HostSnapshot &snap)
{
    sim::StateReader r(snap.image_);
    sim_.loadState(r);
    tree_.loadState(r);
    device_->loadState(r);
    layer_->loadState(r);
    const bool had_faults = r.get<bool>();
    sim::panicIf(had_faults != (faults_ != nullptr),
                 "Host::restore: fault injector presence mismatch — "
                 "snapshots restore state, not structure");
    if (faults_)
        faults_->loadState(r);
    const bool had_pagecache = r.get<bool>();
    sim::panicIf(had_pagecache != (pagecache_ != nullptr),
                 "Host::restore: page cache presence mismatch — "
                 "snapshots restore state, not structure");
    if (pagecache_)
        pagecache_->loadState(r);
    const auto tracked = r.get<uint32_t>();
    sim::panicIf(tracked != tracked_.size(),
                 "Host::restore: tracked-object count mismatch — "
                 "register the same workloads in the same order");
    for (sim::Snapshottable *obj : tracked_)
        obj->loadState(r);
    sim::panicIf(!r.atEnd(),
                 "Host::restore: trailing bytes in snapshot image");
}

BranchScope::BranchScope(Host &host)
    : host_(host), snap_(host.snapshot())
{
    // Branch telemetry must not interleave into the baseline's
    // stream: fork the sink (fresh ring, fresh null) or run the
    // branch disconnected when the sink is not duplicable (a JSONL
    // file — two writers would corrupt it).
    baselineSink_ = host_.layer().telemetry().sink();
    if (baselineSink_ != nullptr) {
        branchSink_ = baselineSink_->fork();
        host_.layer().setTelemetrySink(branchSink_.get());
    }
}

BranchScope::~BranchScope()
{
    host_.restore(snap_);
    host_.layer().setTelemetrySink(baselineSink_);
}

} // namespace iocost::host
