/**
 * @file
 * cgroupfs-style host configuration.
 *
 * Production systems configure IO control by writing files in the
 * cgroup hierarchy; this applier accepts the same shape as text —
 * one cgroup path per line followed by key=value settings — so
 * whole-host configurations are a copy-paste away from a real
 * machine:
 *
 *     workload.slice                io.weight=500
 *     workload.slice/web            io.weight=200 memory.low=2G
 *     system.slice/chef             io.weight=25
 *
 * Supported keys: io.weight (cgroup v2 weight), memory.low
 * (reclaim protection, requires the host's MemoryManager), and
 * memory.dirty_limit (per-cgroup dirty-page cap in bytes, requires
 * the host's PageCache). Missing cgroups are created along the
 * path. Sizes accept K/M/G suffixes.
 */

#ifndef IOCOST_HOST_CONFIG_HH
#define IOCOST_HOST_CONFIG_HH

#include <optional>
#include <string>

#include "host/host.hh"

namespace iocost::host {

/** Outcome of applying a configuration. */
struct ApplyResult
{
    /** Lines successfully applied. */
    unsigned applied = 0;
    /** First error, empty when fully applied. */
    std::string error;

    explicit operator bool() const { return error.empty(); }
};

/**
 * Apply a cgroupfs-style configuration to @p host.
 *
 * Stops at the first malformed line or unknown key and reports it;
 * earlier lines stay applied (like a sequence of `echo >` writes).
 */
ApplyResult applyConfig(Host &host, const std::string &config);

/**
 * Find a cgroup by slash-separated path relative to the root
 * ("workload.slice/web"). Returns kNone when absent.
 */
cgroup::CgroupId findCgroup(cgroup::CgroupTree &tree,
                            const std::string &path);

/**
 * Find or create a cgroup by path, creating intermediate groups
 * with the default weight.
 */
cgroup::CgroupId ensureCgroup(cgroup::CgroupTree &tree,
                              const std::string &path);

/** Parse a size with optional K/M/G suffix ("2G" -> 2^31). */
std::optional<uint64_t> parseSize(const std::string &text);

} // namespace iocost::host

#endif // IOCOST_HOST_CONFIG_HH
