/**
 * @file
 * Named-device factory: one table from CLI/scenario device names to
 * constructed device models.
 *
 * iocost_sim, the what-if service, and tests all accept the same
 * device vocabulary; centralizing the table here keeps the accepted
 * names (and the derived iocost cost models) in one place.
 */

#ifndef IOCOST_HOST_DEVICE_FACTORY_HH
#define IOCOST_HOST_DEVICE_FACTORY_HH

#include <memory>
#include <string>

#include "blk/block_device.hh"
#include "core/cost_model.hh"
#include "sim/simulator.hh"

namespace iocost::host {

/**
 * Build a device model by name.
 *
 * Accepted names: the evaluation SSDs ("oldgen", "newgen",
 * "enterprise"), the Fig. 3 fleet SSDs ("A".."H"), the nearline
 * spinning disk ("hdd"), and the Fig. 17 cloud volumes ("gp3",
 * "io2", "pd-balanced", "pd-ssd").
 *
 * @param model_out When non-null, receives the profiled linear cost
 *        model for the device (what an io.cost.model line tuned for
 *        this hardware would say).
 * @throws std::invalid_argument on an unknown name.
 */
std::unique_ptr<blk::BlockDevice>
makeNamedDevice(const std::string &name, sim::Simulator &sim,
                core::LinearModelConfig *model_out = nullptr);

/**
 * Swap a live device's spec to the named profile, in place (the
 * what-if "device profile D -> G" query). The replacement must be
 * the same device kind — an SSD model can take any SSD profile but
 * not "hdd" or a cloud volume. The installed controller keeps its
 * configuration (including any iocost cost model tuned for the old
 * profile): the query answers "what if the hardware's behaviour
 * changed under this configuration", which is exactly the model
 * staleness the paper's QoS vrate clamps absorb.
 *
 * @throws std::invalid_argument on an unknown profile name or a
 *         device-kind mismatch.
 */
void applyDeviceProfile(blk::BlockDevice &dev,
                        const std::string &profile);

} // namespace iocost::host

#endif // IOCOST_HOST_DEVICE_FACTORY_HH
