#include "host/config.hh"

#include <cstdlib>
#include <sstream>
#include <vector>

namespace iocost::host {

std::optional<uint64_t>
parseSize(const std::string &text)
{
    if (text.empty())
        return std::nullopt;
    char *end = nullptr;
    const double v = std::strtod(text.c_str(), &end);
    if (end == text.c_str() || v < 0)
        return std::nullopt;
    uint64_t mult = 1;
    if (*end != '\0') {
        switch (*end) {
          case 'K':
          case 'k':
            mult = 1ull << 10;
            break;
          case 'M':
          case 'm':
            mult = 1ull << 20;
            break;
          case 'G':
          case 'g':
            mult = 1ull << 30;
            break;
          default:
            return std::nullopt;
        }
        if (*(end + 1) != '\0')
            return std::nullopt;
    }
    return static_cast<uint64_t>(v * static_cast<double>(mult));
}

namespace {

/** Split a path into components, ignoring leading '/'. */
std::vector<std::string>
splitPath(const std::string &path)
{
    std::vector<std::string> parts;
    std::string part;
    std::istringstream in(path);
    while (std::getline(in, part, '/')) {
        if (!part.empty())
            parts.push_back(part);
    }
    return parts;
}

cgroup::CgroupId
childByName(cgroup::CgroupTree &tree, cgroup::CgroupId parent,
            const std::string &name)
{
    for (cgroup::CgroupId child : tree.children(parent)) {
        if (tree.name(child) == name)
            return child;
    }
    return cgroup::kNone;
}

} // namespace

cgroup::CgroupId
findCgroup(cgroup::CgroupTree &tree, const std::string &path)
{
    cgroup::CgroupId cur = cgroup::kRoot;
    for (const std::string &part : splitPath(path)) {
        cur = childByName(tree, cur, part);
        if (cur == cgroup::kNone)
            return cgroup::kNone;
    }
    return cur;
}

cgroup::CgroupId
ensureCgroup(cgroup::CgroupTree &tree, const std::string &path)
{
    cgroup::CgroupId cur = cgroup::kRoot;
    for (const std::string &part : splitPath(path)) {
        const cgroup::CgroupId next = childByName(tree, cur, part);
        cur = next != cgroup::kNone ? next : tree.create(cur, part);
    }
    return cur;
}

ApplyResult
applyConfig(Host &host, const std::string &config)
{
    ApplyResult result;
    std::istringstream lines(config);
    std::string line;
    unsigned line_no = 0;
    while (std::getline(lines, line)) {
        ++line_no;
        // Strip comments.
        const auto hash = line.find('#');
        if (hash != std::string::npos)
            line.resize(hash);
        std::istringstream in(line);
        std::string path;
        if (!(in >> path))
            continue; // blank line

        const cgroup::CgroupId cg =
            ensureCgroup(host.tree(), path);
        std::string setting;
        bool any = false;
        while (in >> setting) {
            const auto eq = setting.find('=');
            if (eq == std::string::npos) {
                result.error = "line " + std::to_string(line_no) +
                               ": expected key=value, got '" +
                               setting + "'";
                return result;
            }
            const std::string key = setting.substr(0, eq);
            const std::string value = setting.substr(eq + 1);
            if (key == "io.weight") {
                const auto weight = parseSize(value);
                if (!weight || *weight == 0 ||
                    *weight > 10000) {
                    result.error =
                        "line " + std::to_string(line_no) +
                        ": bad io.weight '" + value + "'";
                    return result;
                }
                host.tree().setWeight(
                    cg, static_cast<uint32_t>(*weight));
            } else if (key == "memory.low") {
                const auto bytes = parseSize(value);
                if (!bytes) {
                    result.error =
                        "line " + std::to_string(line_no) +
                        ": bad memory.low '" + value + "'";
                    return result;
                }
                if (!host.hasMemory()) {
                    result.error =
                        "line " + std::to_string(line_no) +
                        ": memory.low requires enableMemory";
                    return result;
                }
                host.mm().setProtection(cg, *bytes);
            } else if (key == "memory.dirty_limit") {
                const auto bytes = parseSize(value);
                if (!bytes) {
                    result.error =
                        "line " + std::to_string(line_no) +
                        ": bad memory.dirty_limit '" + value + "'";
                    return result;
                }
                if (!host.hasPageCache()) {
                    result.error =
                        "line " + std::to_string(line_no) +
                        ": memory.dirty_limit requires "
                        "enablePageCache";
                    return result;
                }
                host.pageCache().setDirtyLimit(cg, *bytes);
            } else {
                result.error = "line " + std::to_string(line_no) +
                               ": unknown key '" + key + "'";
                return result;
            }
            any = true;
        }
        if (any)
            ++result.applied;
    }
    return result;
}

} // namespace iocost::host
