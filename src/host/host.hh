/**
 * @file
 * Host: one simulated machine assembled from the substrate modules.
 *
 * Bundles a block device, the block layer, the cgroup hierarchy in
 * Meta's production shape (Fig. 1: system / hostcritical /
 * workload slices), an IO controller selected by name, and an
 * optional memory manager. Benches and examples construct Hosts
 * instead of wiring the pieces by hand.
 */

#ifndef IOCOST_HOST_HOST_HH
#define IOCOST_HOST_HOST_HH

#include <memory>
#include <string>
#include <vector>

#include "blk/block_device.hh"
#include "blk/block_layer.hh"
#include "cgroup/cgroup_tree.hh"
#include "controllers/factory.hh"
#include "core/iocost.hh"
#include "mm/memory_manager.hh"
#include "mm/page_cache.hh"
#include "sim/fault.hh"
#include "sim/simulator.hh"
#include "sim/state.hh"

namespace iocost::host {

/** Host assembly options. */
struct HostOptions
{
    /**
     * Mechanism plus its configuration (see
     * controllers::makeController). Assigning a bare name string
     * keeps the embedded configs, so `opts.controller = "kyber";`
     * and `opts.controller.iocost.qos.period = ...;` compose in
     * either order.
     */
    controllers::ControllerSpec controller = "iocost";

    /**
     * Telemetry sink installed on the block layer (not owned; must
     * outlive the Host). nullptr leaves telemetry disabled.
     */
    stat::TelemetrySink *telemetrySink = nullptr;

    /** Emit per-completion detail records (see stat::Telemetry). */
    bool telemetryDetail = false;

    /** Construct a MemoryManager backed by this host's device. */
    bool enableMemory = false;
    mm::MemoryConfig memoryConfig;

    /**
     * Construct a PageCache (buffered IO + dirty writeback) backed
     * by this host's device. Unlike the memory manager, the page
     * cache is fully snapshottable, so buffered scenarios work with
     * branch()/what-if.
     */
    bool enablePageCache = false;
    mm::PageCacheConfig pageCacheConfig;

    /** Enable the submission-path CPU model (Fig. 9). */
    bool submissionCpu = false;

    /** Weights for the three top-level slices. */
    uint32_t workloadWeight = 500;
    uint32_t hostCriticalWeight = 100;
    uint32_t systemWeight = 50;

    /**
     * Device fault spec (sim::FaultPlan::parse grammar). Non-empty
     * installs a FaultInjector on the device and the spec's retry
     * policy on the block layer; parse errors throw
     * std::invalid_argument from the Host constructor. Empty (the
     * default) models a healthy device.
     */
    std::string faults;

    /**
     * Xored into the fault plan's seed (the fleet passes its slice
     * seed so hosts decorrelate deterministically).
     */
    uint64_t faultSeedMix = 0;

    /**
     * Install a FaultInjector even when `faults` is empty (an empty
     * plan: zero windows, default retry policy — behaviorally
     * identical to no injector). The what-if service sets this so
     * inject-fault queries can add windows to an otherwise healthy
     * scenario; the injector must exist *before* the baseline runs
     * or its presence would not survive snapshot/restore.
     */
    bool installFaultInjector = false;
};

class Host;

/**
 * An immutable image of one Host's complete mutable state: event
 * arena, clocks, RNGs, cgroup weights, in-flight and queued bios,
 * controller accounting, device internals, workload cursors.
 *
 * Snapshots are value objects: copyable, thread-safe to destroy
 * anywhere (all boxed bios are heap-backed), and restorable any
 * number of times — each restore clones queued bios afresh, so two
 * branches seeded from one snapshot never alias.
 */
class HostSnapshot
{
  public:
    HostSnapshot() = default;

    /** Image size in bytes (perf_kernel tracks this). */
    size_t byteSize() const { return image_.byteSize(); }

    /** Deep-cloned objects (bios, event callbacks) in the image. */
    size_t boxCount() const { return image_.boxCount(); }

    /**
     * The raw image. The byte tape is a deterministic function of
     * host state, so tests compare two hosts for state equality by
     * comparing `image().bytes` (boxed bios live behind pointers
     * and are excluded from the byte comparison).
     */
    const sim::StateImage &image() const { return image_; }

  private:
    friend class Host;
    sim::StateImage image_;
};

/**
 * RAII what-if branch: construction snapshots the host and swaps
 * its telemetry to a forked (or disconnected) sink; destruction
 * restores the snapshot and reinstalls the baseline sink. Run any
 * hypothetical inside the scope — weight changes, fault windows,
 * model swaps, more simulated time — and the host rolls back to the
 * branch point, byte-identical, when the scope ends.
 */
class BranchScope
{
  public:
    explicit BranchScope(Host &host);
    ~BranchScope();

    BranchScope(const BranchScope &) = delete;
    BranchScope &operator=(const BranchScope &) = delete;

    /** The branch-point image (restorable again later). */
    const HostSnapshot &snapshot() const { return snap_; }

  private:
    Host &host_;
    HostSnapshot snap_;
    stat::TelemetrySink *baselineSink_ = nullptr;
    std::unique_ptr<stat::TelemetrySink> branchSink_;
};

/**
 * One simulated machine.
 */
class Host
{
  public:
    /**
     * @param sim Shared simulation context (multiple Hosts may share
     *        one simulator, e.g. the ZooKeeper cluster bench).
     * @param device The backing block device (ownership taken).
     * @param opts Assembly options.
     */
    Host(sim::Simulator &sim,
         std::unique_ptr<blk::BlockDevice> device, HostOptions opts);

    /**
     * Non-copyable and non-movable: the block layer holds a
     * reference to the member cgroup tree, so relocating a Host
     * would dangle it. Heap-allocate Hosts that must outlive a
     * scope.
     */
    Host(const Host &) = delete;
    Host &operator=(const Host &) = delete;

    blk::BlockLayer &layer() { return *layer_; }
    cgroup::CgroupTree &tree() { return tree_; }
    blk::BlockDevice &device() { return *device_; }
    sim::Simulator &sim() { return sim_; }

    /** The memory manager; requires enableMemory. */
    mm::MemoryManager &mm() { return *mm_; }
    bool hasMemory() const { return mm_ != nullptr; }

    /** The page cache; requires enablePageCache. */
    mm::PageCache &pageCache() { return *pagecache_; }
    bool hasPageCache() const { return pagecache_ != nullptr; }

    /** Top-level slices (Fig. 1). */
    cgroup::CgroupId system() const { return system_; }
    cgroup::CgroupId hostCritical() const { return hostCritical_; }
    cgroup::CgroupId workload() const { return workload_; }

    /** Create a container cgroup under the workload slice. */
    cgroup::CgroupId
    addWorkload(const std::string &name, uint32_t weight = 100)
    {
        return tree_.create(workload_, name, weight);
    }

    /** Create a service cgroup under the system slice. */
    cgroup::CgroupId
    addSystemService(const std::string &name, uint32_t weight = 100)
    {
        return tree_.create(system_, name, weight);
    }

    /** The installed IoCost, or nullptr for other mechanisms. */
    core::IoCost *
    iocost()
    {
        return dynamic_cast<core::IoCost *>(layer_->controller());
    }

    /** The fault injector, or nullptr for a healthy device. */
    sim::FaultInjector *faults() { return faults_.get(); }

    /**
     * Register an external mutable-state object (a workload) with
     * the snapshot machinery. Registration order defines the tape
     * layout, so callers must track the same objects in the same
     * order on every host built from one scenario — the natural
     * consequence of deterministic construction. The object must
     * outlive the host's last snapshot()/restore() call.
     */
    void track(sim::Snapshottable &obj) { tracked_.push_back(&obj); }

    /**
     * Capture the host's complete mutable state. Panics when the
     * memory manager is enabled (its async-loop closures alias
     * shared_ptr state the tape cannot clone) — what-if scenarios
     * model IO control, not reclaim.
     */
    HostSnapshot snapshot() const;

    /**
     * Roll every layer back to @p snap, in place: captured `this`
     * pointers in restored event callbacks stay valid because the
     * object graph never moves. The same snapshot may be restored
     * any number of times. This is also the ONE way to reset a host
     * for re-runs — snapshot the pristine (or post-warmup) state
     * once and restore instead of rebuilding or hand-resetting.
     */
    void restore(const HostSnapshot &snap);

    /** Open a what-if branch at the current instant (see
     *  BranchScope). */
    BranchScope branch() { return BranchScope(*this); }

    /**
     * The one documented stats-boundary reset (warmup ends here):
     * clears the block layer's per-cgroup accounting. Workload
     * counters reset through their own resetStats() — or, better,
     * snapshot() at the boundary and restore() to re-run.
     */
    void resetStats() { layer_->resetStats(); }

  private:
    sim::Simulator &sim_;
    std::unique_ptr<blk::BlockDevice> device_;
    /** Owned injector; outlives the device's borrowed pointer. */
    std::unique_ptr<sim::FaultInjector> faults_;
    cgroup::CgroupTree tree_;
    std::unique_ptr<blk::BlockLayer> layer_;
    std::unique_ptr<mm::MemoryManager> mm_;
    std::unique_ptr<mm::PageCache> pagecache_;
    cgroup::CgroupId system_ = cgroup::kNone;
    cgroup::CgroupId hostCritical_ = cgroup::kNone;
    cgroup::CgroupId workload_ = cgroup::kNone;
    /** Externally owned snapshot participants, in track() order. */
    std::vector<sim::Snapshottable *> tracked_;
};

} // namespace iocost::host

#endif // IOCOST_HOST_HOST_HH
