/**
 * @file
 * Host: one simulated machine assembled from the substrate modules.
 *
 * Bundles a block device, the block layer, the cgroup hierarchy in
 * Meta's production shape (Fig. 1: system / hostcritical /
 * workload slices), an IO controller selected by name, and an
 * optional memory manager. Benches and examples construct Hosts
 * instead of wiring the pieces by hand.
 */

#ifndef IOCOST_HOST_HOST_HH
#define IOCOST_HOST_HOST_HH

#include <memory>
#include <string>

#include "blk/block_device.hh"
#include "blk/block_layer.hh"
#include "cgroup/cgroup_tree.hh"
#include "controllers/factory.hh"
#include "core/iocost.hh"
#include "mm/memory_manager.hh"
#include "sim/fault.hh"
#include "sim/simulator.hh"

namespace iocost::host {

/** Host assembly options. */
struct HostOptions
{
    /**
     * Mechanism plus its configuration (see
     * controllers::makeController). Assigning a bare name string
     * keeps the embedded configs, so `opts.controller = "kyber";`
     * and `opts.controller.iocost.qos.period = ...;` compose in
     * either order.
     */
    controllers::ControllerSpec controller = "iocost";

    /**
     * Telemetry sink installed on the block layer (not owned; must
     * outlive the Host). nullptr leaves telemetry disabled.
     */
    stat::TelemetrySink *telemetrySink = nullptr;

    /** Emit per-completion detail records (see stat::Telemetry). */
    bool telemetryDetail = false;

    /** Construct a MemoryManager backed by this host's device. */
    bool enableMemory = false;
    mm::MemoryConfig memoryConfig;

    /** Enable the submission-path CPU model (Fig. 9). */
    bool submissionCpu = false;

    /** Weights for the three top-level slices. */
    uint32_t workloadWeight = 500;
    uint32_t hostCriticalWeight = 100;
    uint32_t systemWeight = 50;

    /**
     * Device fault spec (sim::FaultPlan::parse grammar). Non-empty
     * installs a FaultInjector on the device and the spec's retry
     * policy on the block layer; parse errors throw
     * std::invalid_argument from the Host constructor. Empty (the
     * default) models a healthy device.
     */
    std::string faults;

    /**
     * Xored into the fault plan's seed (the fleet passes its slice
     * seed so hosts decorrelate deterministically).
     */
    uint64_t faultSeedMix = 0;
};

/**
 * One simulated machine.
 */
class Host
{
  public:
    /**
     * @param sim Shared simulation context (multiple Hosts may share
     *        one simulator, e.g. the ZooKeeper cluster bench).
     * @param device The backing block device (ownership taken).
     * @param opts Assembly options.
     */
    Host(sim::Simulator &sim,
         std::unique_ptr<blk::BlockDevice> device, HostOptions opts);

    /**
     * Non-copyable and non-movable: the block layer holds a
     * reference to the member cgroup tree, so relocating a Host
     * would dangle it. Heap-allocate Hosts that must outlive a
     * scope.
     */
    Host(const Host &) = delete;
    Host &operator=(const Host &) = delete;

    blk::BlockLayer &layer() { return *layer_; }
    cgroup::CgroupTree &tree() { return tree_; }
    blk::BlockDevice &device() { return *device_; }
    sim::Simulator &sim() { return sim_; }

    /** The memory manager; requires enableMemory. */
    mm::MemoryManager &mm() { return *mm_; }
    bool hasMemory() const { return mm_ != nullptr; }

    /** Top-level slices (Fig. 1). */
    cgroup::CgroupId system() const { return system_; }
    cgroup::CgroupId hostCritical() const { return hostCritical_; }
    cgroup::CgroupId workload() const { return workload_; }

    /** Create a container cgroup under the workload slice. */
    cgroup::CgroupId
    addWorkload(const std::string &name, uint32_t weight = 100)
    {
        return tree_.create(workload_, name, weight);
    }

    /** Create a service cgroup under the system slice. */
    cgroup::CgroupId
    addSystemService(const std::string &name, uint32_t weight = 100)
    {
        return tree_.create(system_, name, weight);
    }

    /** The installed IoCost, or nullptr for other mechanisms. */
    core::IoCost *
    iocost()
    {
        return dynamic_cast<core::IoCost *>(layer_->controller());
    }

    /** The fault injector, or nullptr for a healthy device. */
    sim::FaultInjector *faults() { return faults_.get(); }

  private:
    sim::Simulator &sim_;
    std::unique_ptr<blk::BlockDevice> device_;
    /** Owned injector; outlives the device's borrowed pointer. */
    std::unique_ptr<sim::FaultInjector> faults_;
    cgroup::CgroupTree tree_;
    std::unique_ptr<blk::BlockLayer> layer_;
    std::unique_ptr<mm::MemoryManager> mm_;
    cgroup::CgroupId system_ = cgroup::kNone;
    cgroup::CgroupId hostCritical_ = cgroup::kNone;
    cgroup::CgroupId workload_ = cgroup::kNone;
};

} // namespace iocost::host

#endif // IOCOST_HOST_HOST_HH
