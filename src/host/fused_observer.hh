/**
 * @file
 * FusedObserver — the K-wide fast path for lockstep sweep lanes.
 *
 * In a coherent sweep (QoS/knob grids) the K lanes agree on almost
 * every decision: every lane admits the same bio at the same
 * instant, dispatches it to a device with free slots, and completes
 * it when the shared ServiceLog records the outcome. The full-lane
 * path still pays K times for bio materialization, controller
 * virtual dispatch, per-lane pending-table hashing, and per-lane
 * stats plumbing. The fused observer collapses all of that into one
 * K-wide loop over the lanes' authoritative state:
 *
 *  - the sequentiality classification and each distinct CostModel's
 *    cost are computed ONCE per generator bio (lanes sharing a model
 *    form a cost group);
 *  - per lane, the common admit-and-charge case of the iocost issue
 *    path is inlined here (IoCost befriends the observer), against a
 *    per-lane arena of cached Iocg pointers and hierarchical
 *    weights — one straight-line pass over a handful of cache lines
 *    instead of a cross-TU call chain with deque and weight-tree
 *    lookups per lane. Anything off the straight line (activation,
 *    debt, swap/meta, over-budget) falls back to IoCost::fusedIssue,
 *    whose leading mutations are idempotent re-runs of the inlined
 *    ones; the device slot is taken bio-lessly
 *    (ReplayDevice::fusedAcquire);
 *  - the in-flight request is tracked once, in an observer-owned
 *    record keyed by bio id with a member-lane bitmask, instead of
 *    K parked bios in K pending tables;
 *  - when the log records the Ok outcome, one pooled simulator
 *    event delivers all member lanes' completions;
 *  - accounting that is an order-independent integer monoid — the
 *    layers' per-cgroup count/byte/histogram stats, the controllers'
 *    period latency histograms, the submitted/completed/nextBioId
 *    counters — is recorded ONCE into shared scratch and merged into
 *    every fused lane at flush points (planning boundaries, forks,
 *    stat reads). Histograms are all-integer, so merge order cannot
 *    change a single bit. Control state (vtime, gvtime, outstanding,
 *    busy time, device in-flight) is never deferred: it stays on the
 *    real objects, mutated at the real instants, so real-path
 *    traffic (retries of forked records, diverged lanes) interleaves
 *    exactly as on the full path.
 *
 * A lane leaves the fused path (forks) the moment its state
 * actually diverges: its controller queues the bio (hard throttle /
 * debt), or its device is saturated / has parked bios. Forking
 * materializes the lane's fused in-flight records as real parked
 * bios, so the existing full-lane machinery takes over mid-stream
 * with byte-identical state. Error and expiry outcomes fork only
 * the affected record (all lanes handle retries on the real path),
 * not the whole lane. A diverged lane re-fuses at a planning
 * boundary once it is quiescent again: empty waitqs, no kick
 * timers, empty dispatch FIFO.
 *
 * Correctness invariant: every fused mutation is exactly the
 * mutation the full path would make, in the same order, at the same
 * simulated instant — so fused vs full-lane results are
 * byte-identical and fork/refuse timing is purely a performance
 * decision. The observer is only built when it can hold that
 * invariant: iocost lanes, K <= 64, no detail telemetry (per-
 * completion records would need per-lane emission order), no
 * cost programs (they take a materialized bio).
 */

#ifndef IOCOST_HOST_FUSED_OBSERVER_HH
#define IOCOST_HOST_FUSED_OBSERVER_HH

#include <cstdint>
#include <vector>

#include "blk/bio.hh"
#include "blk/block_layer.hh"
#include "blk/service_log.hh"
#include "core/iocost.hh"
#include "device/replay_device.hh"
#include "sim/simulator.hh"

namespace iocost::host {

/**
 * One fused charge/complete loop over a sweep's shadow lanes.
 * Owned and driven by the SweepRunner.
 */
class FusedObserver
{
  public:
    /**
     * @param sim Shared simulation context.
     * @param generator_layer The generator's block layer (telemetry
     *        host for the fused/diverged period counts).
     * @param log The shared outcome log.
     * @param queue_depth The generator device's queue depth (sizes
     *        the in-flight record table).
     */
    FusedObserver(sim::Simulator &sim,
                  blk::BlockLayer &generator_layer,
                  const blk::ServiceLog &log, uint32_t queue_depth);

    FusedObserver(const FusedObserver &) = delete;
    FusedObserver &operator=(const FusedObserver &) = delete;

    /** Register one shadow lane (construction order = lane index). */
    void addLane(blk::BlockLayer &layer, device::ReplayDevice &dev,
                 core::IoCost *ioc);

    /** Build cost groups and fuse every eligible lane (call once,
     *  after all addLane calls). */
    void start();

    /**
     * The generator submitted @p bio: run the K-wide loop. Fused
     * lanes are charged/dispatched bio-lessly; diverged (or never
     * fusable) lanes get a real clone through the full path.
     */
    void onGeneratorBio(const blk::Bio &bio);

    /**
     * ServiceLog append/close for @p id. Consumes the fused record,
     * if any: an Ok outcome schedules the batched fused completion;
     * an error (or closed-with-no-entry) outcome forks the record
     * into real parked bios so the caller's per-lane resolve pass
     * handles retry/clamp exactly like the full path.
     */
    void onLogEvent(uint64_t id);

    /**
     * A planning-group boundary ran: re-validate cost groups (model
     * updates take effect here, next period), re-fuse quiescent
     * diverged lanes, refresh the cached per-lane weights/budget cap
     * (planning may have changed vrate and inuse), and publish the
     * period's fused/diverged lane counts through the generator's
     * telemetry. The caller must flushDeferred() BEFORE running the
     * planning passes — planning consumes the period histograms.
     */
    void onPlanBoundary();

    /**
     * Land the deferred accounting window (per-cgroup stats, period
     * latency histograms, submitted/completed/nextBioId) on every
     * fused lane and clear the scratch. Must run before anything
     * reads a fused lane's stats or before lane membership changes;
     * the SweepRunner calls it at planning boundaries and stat
     * reads, diverge() calls it on forks. Idempotent and cheap when
     * the window is empty.
     */
    void flushDeferred();

    /** Lane-submissions taken on the fused path so far. */
    uint64_t fusedLaneBios() const { return fusedLaneBios_; }

    /** Total lane-submissions observed (K per generator bio). */
    uint64_t totalLaneBios() const { return totalLaneBios_; }

    /** Fused-path share of all lane-submissions, 0..1. */
    double
    fusedFraction() const
    {
        return totalLaneBios_ == 0
                   ? 0.0
                   : static_cast<double>(fusedLaneBios_) /
                         static_cast<double>(totalLaneBios_);
    }

    /** Lanes currently on the fused path. */
    size_t
    fusedLaneCount() const
    {
        size_t n = 0;
        for (const LaneRef &ln : lanes_)
            n += ln.fused ? 1 : 0;
        return n;
    }

  private:
    /** IoCost's private per-cgroup state (we are a friend). */
    using Iocg = core::IoCost::Iocg;

    /**
     * Cached per-(lane, cgroup) hot state: the stable Iocg pointer
     * (iocgs_ is a deque) and the hierarchical inuse weight. The
     * weight is refreshed whenever it can change under a fused lane:
     * planning boundaries (donation) and slow-path issues
     * (activation, rescind).
     */
    struct LaneCg
    {
        Iocg *st = nullptr;
        double hw = 0.0;
    };

    /** One observed lane. */
    struct LaneRef
    {
        blk::BlockLayer *layer;
        device::ReplayDevice *dev;
        core::IoCost *ioc; // nullptr = non-iocost mechanism
        /** Static eligibility (iocost, no cost program). */
        bool fusable = false;
        /** Currently on the fused fast path. */
        bool fused = false;
        /** Index into groups_ (valid while fusable). */
        uint32_t costGroup = 0;
        /** Cached budget cap (refreshed at planning boundaries —
         *  vrate only changes there). */
        double budgetCap = 0.0;
        /** Per-cgroup cached pointers/weights, indexed by id. */
        std::vector<LaneCg> cgs;
    };

    /** Lanes sharing one CostModel: one cost() call serves all. */
    struct CostGroup
    {
        core::IoCost *rep;
        double cost = 0.0;
    };

    /**
     * One fused in-flight request: everything needed to deliver the
     * member lanes' completions — or to materialize real bios on a
     * fork — without having stored K bios.
     */
    struct Record
    {
        /** Member-lane bitmask (the K <= 64 gate). */
        uint64_t lanes = 0;
        uint64_t offset = 0;
        uint32_t size = 0;
        blk::Op op = blk::Op::Read;
        bool swap = false;
        bool meta = false;
        bool wb = false;
        cgroup::CgroupId cg = 0;
        /** Submit == dispatch instant (fused bios never park). */
        sim::Time time = 0;
    };

    /** Open-addressed id -> Record cell (id == 0 marks empty). */
    struct Cell
    {
        uint64_t id = 0;
        Record rec;
    };

    /** Pooled pending fused completion (freelisted slots). */
    struct Fire
    {
        Record rec;
        sim::Time duration = 0;
        uint32_t nextFree = kNoFire;
    };
    static constexpr uint32_t kNoFire = UINT32_MAX;

    size_t cellIndex(uint64_t id) const;
    Cell *findRecord(uint64_t id);
    Cell *insertRecord(uint64_t id, const blk::Bio &bio,
                       sim::Time now);
    void eraseRecord(uint64_t id);
    void growRecords();

    /** Fork lane @p k off the fused path, materializing its fused
     *  in-flight records as real parked bios (flushes the deferred
     *  window into the departing lane first). */
    void diverge(size_t k);

    /** Cached per-(lane, cgroup) slot, populated on first use. */
    LaneCg &laneCg(LaneRef &ln, cgroup::CgroupId cg);

    /** Re-read @p ln's cached weights and budget cap. */
    void refreshLaneCaches(LaneRef &ln);

    /**
     * The non-straight-line issue path for lane @p k: delegate to
     * IoCost::fusedIssue (activation / debt / swap-meta / over-budget
     * handling), refresh the lane caches it may have invalidated,
     * and fork + queue on a Queued verdict. Returns true when the
     * bio was dispatched (caller runs the device tail), false when
     * the lane forked and queued it.
     */
    bool slowIssue(size_t k, const blk::Bio &bio, double abs_cost,
                   sim::Time now);

    /** A real bio carrying the fields the full path would have set
     *  by this point (submit, or submit + issue). */
    blk::BioPtr materialize(const blk::Bio &src, uint64_t id,
                            sim::Time submit_time,
                            double controller_scratch) const;

    /** Same, from a fused in-flight record (already dispatched). */
    blk::BioPtr materializeRecord(uint64_t id,
                                  const Record &rec) const;

    uint32_t allocFire();
    void fireFused(uint32_t slot);
    void rebuildGroups();

    sim::Simulator &sim_;
    blk::BlockLayer &generatorLayer_;
    const blk::ServiceLog &log_;

    std::vector<LaneRef> lanes_;
    std::vector<CostGroup> groups_;

    /** Shared per-cgroup lastEnd for the one-shot sequentiality
     *  classification. Provably equal to every lane's own lastEnd:
     *  all lanes observe the identical per-cgroup stream. */
    std::vector<uint64_t> lastEnd_;

    std::vector<Cell> records_;
    size_t recordCount_ = 0;

    std::vector<Fire> firePool_;
    uint32_t freeFire_ = kNoFire;

    /** Bitmask of currently-fused lanes (mirrors LaneRef::fused).
     *  A completion window can be scratch-deferred only when the
     *  record's member mask equals this mask — records issued before
     *  a refusion deliver to fewer lanes than are now fused. */
    uint64_t fusedMask_ = 0;

    /**
     * @name Deferred accounting window (order-independent monoids).
     *
     * Everything here is identical for every fused lane, recorded
     * once and merged at flush points. All-integer state only:
     * histogram merges and counter adds are associative and
     * commutative, so the merge instant cannot change results.
     * @{
     */
    /** Per-cgroup Ok-completion stats (errors never deferred). */
    std::vector<blk::CgroupIoStats> statScratch_;
    /** Controller period-latency windows (IoCost::periodReadLat_). */
    stat::Histogram periodReadScratch_;
    stat::Histogram periodWriteScratch_;
    /** Bios accepted / completed while fused this window. */
    uint64_t submitScratch_ = 0;
    uint64_t completeScratch_ = 0;
    /** Generator's next bio id (lockstep assertion at flush). */
    uint64_t expectedNextId_ = 0;
    bool scratchDirty_ = false;
    /** @} */

    uint64_t fusedLaneBios_ = 0;
    uint64_t totalLaneBios_ = 0;
};

} // namespace iocost::host

#endif // IOCOST_HOST_FUSED_OBSERVER_HH
