#include "host/device_factory.hh"

#include <optional>
#include <stdexcept>

#include "device/device_profiles.hh"
#include "device/hdd_model.hh"
#include "device/remote_model.hh"
#include "device/ssd_model.hh"
#include "profile/device_profiler.hh"

namespace iocost::host {

namespace {

std::optional<device::SsdSpec>
ssdByName(const std::string &name)
{
    if (name.size() == 1 && name[0] >= 'A' && name[0] <= 'H')
        return device::fleetSsd(name[0]);
    if (name == "oldgen")
        return device::oldGenSsd();
    if (name == "newgen")
        return device::newGenSsd();
    if (name == "enterprise")
        return device::enterpriseSsd();
    return std::nullopt;
}

std::optional<device::RemoteSpec>
remoteByName(const std::string &name)
{
    if (name == "gp3")
        return device::awsGp3();
    if (name == "io2")
        return device::awsIo2();
    if (name == "pd-balanced")
        return device::gcpBalanced();
    if (name == "pd-ssd")
        return device::gcpSsd();
    return std::nullopt;
}

[[noreturn]] void
unknownDevice(const std::string &name)
{
    throw std::invalid_argument(
        "unknown device \"" + name +
        "\" (oldgen, newgen, enterprise, A..H, hdd, gp3, io2, "
        "pd-balanced, pd-ssd)");
}

} // namespace

std::unique_ptr<blk::BlockDevice>
makeNamedDevice(const std::string &name, sim::Simulator &sim,
                core::LinearModelConfig *model_out)
{
    if (const auto ssd = ssdByName(name)) {
        if (model_out) {
            *model_out =
                profile::DeviceProfiler::profileSsd(*ssd).model;
        }
        return std::make_unique<device::SsdModel>(sim, *ssd);
    }
    if (name == "hdd") {
        const device::HddSpec spec = device::nearlineHdd();
        if (model_out) {
            *model_out =
                profile::DeviceProfiler::profileHdd(spec).model;
        }
        return std::make_unique<device::HddModel>(sim, spec);
    }
    if (const auto remote = remoteByName(name)) {
        if (model_out) {
            *model_out =
                profile::DeviceProfiler::profileRemote(*remote)
                    .model;
        }
        return std::make_unique<device::RemoteModel>(sim, *remote);
    }
    unknownDevice(name);
}

void
applyDeviceProfile(blk::BlockDevice &dev, const std::string &profile)
{
    if (auto *ssd = dynamic_cast<device::SsdModel *>(&dev)) {
        if (const auto spec = ssdByName(profile)) {
            ssd->setSpec(*spec);
            return;
        }
        if (profile == "hdd" || remoteByName(profile)) {
            throw std::invalid_argument(
                "device profile \"" + profile +
                "\" is not an SSD; a live device can only swap to "
                "a profile of its own kind");
        }
        unknownDevice(profile);
    }
    if (auto *hdd = dynamic_cast<device::HddModel *>(&dev)) {
        if (profile == "hdd") {
            hdd->setSpec(device::nearlineHdd());
            return;
        }
        throw std::invalid_argument(
            "device profile \"" + profile +
            "\" is not a spinning disk; a live device can only "
            "swap to a profile of its own kind");
    }
    if (auto *rm = dynamic_cast<device::RemoteModel *>(&dev)) {
        if (const auto spec = remoteByName(profile)) {
            rm->setSpec(*spec);
            return;
        }
        if (profile == "hdd" || ssdByName(profile)) {
            throw std::invalid_argument(
                "device profile \"" + profile +
                "\" is not a cloud volume; a live device can only "
                "swap to a profile of its own kind");
        }
        unknownDevice(profile);
    }
    throw std::invalid_argument(
        "device model \"" + dev.modelName() +
        "\" does not support profile swaps");
}

} // namespace iocost::host
