#include "host/sweep.hh"

#include <stdexcept>

namespace iocost::host {

namespace {

controllers::ControllerSpec
parseSpecOrThrow(const SweepOptions &opts, const std::string &line)
{
    std::optional<controllers::ControllerSpec> spec =
        controllers::parseControllerSpec(line);
    if (!spec) {
        throw std::invalid_argument("sweep: bad controller spec: " +
                                    line);
    }
    if (opts.tweakSpec)
        opts.tweakSpec(line, *spec);
    return *std::move(spec);
}

} // namespace

/**
 * Pass-through controller installed on the generator's layer. It
 * clones every submission into the lanes (before dispatching the
 * original, so lane bio ids stay in submission-order lockstep with
 * the generator's even when a dispatch runs completions inline that
 * re-enter submit()) and closes each id in the shared log when the
 * generator delivers the final completion.
 */
class TapController final : public blk::IoController
{
  public:
    explicit TapController(SweepRunner &runner) : runner_(runner) {}

    blk::ControllerCaps
    caps() const override
    {
        return {
            .name = "sweep-tap",
            .lowOverhead = true,
            .workConserving = true,
            .memoryManagementAware = false,
            .proportionalFairness = false,
            .cgroupControl = false,
        };
    }

    void
    onSubmit(blk::BioPtr bio) override
    {
        runner_.cloneToLanes(*bio);
        layer().dispatch(std::move(bio));
    }

    void
    onComplete(const blk::Bio &bio,
               const blk::CompletionInfo &info) override
    {
        (void)info;
        runner_.onGeneratorFinal(bio);
    }

    /** Same as the uncontrolled path: the tap models no policy. */
    sim::Time
    issueCpuCost() const override
    {
        return blk::BlockLayer::kNoControllerCpuCost;
    }

  private:
    SweepRunner &runner_;
};

SweepRunner::SweepRunner(sim::Simulator &sim, SweepOptions opts)
    : sim_(sim), opts_(std::move(opts))
{
    if (opts_.specs.empty())
        throw std::invalid_argument("sweep: empty config list");
    if (!opts_.makeDevice)
        throw std::invalid_argument("sweep: no device factory");
    if (!opts_.laneSinks.empty() &&
        opts_.laneSinks.size() != opts_.specs.size()) {
        throw std::invalid_argument(
            "sweep: laneSinks must be empty or one per spec");
    }

    plain_ = opts_.specs.size() == 1 && !opts_.forceShadow;

    HostOptions ho;
    ho.telemetryDetail = opts_.telemetryDetail;
    ho.submissionCpu = opts_.submissionCpu;
    ho.workloadWeight = opts_.workloadWeight;
    ho.hostCriticalWeight = opts_.hostCriticalWeight;
    ho.systemWeight = opts_.systemWeight;
    ho.faults = opts_.faults;
    ho.faultSeedMix = opts_.faultSeedMix;

    if (plain_) {
        // Degenerate K = 1 sweep: exactly the plain single-config
        // stack — same controller, merging on, no log, no tap — so
        // its output is byte-identical to a hand-built Host.
        ho.controller = parseSpecOrThrow(opts_, opts_.specs[0]);
        ho.telemetrySink = !opts_.laneSinks.empty()
                               ? opts_.laneSinks[0]
                               : opts_.generatorSink;
        generator_ = std::make_unique<Host>(
            sim_, opts_.makeDevice(sim_), std::move(ho));
        return;
    }

    // Parse every spec before building anything: a malformed config
    // fails the whole sweep loudly, not after K - 1 lanes exist.
    std::vector<controllers::ControllerSpec> specs;
    specs.reserve(opts_.specs.size());
    for (const std::string &line : opts_.specs)
        specs.push_back(parseSpecOrThrow(opts_, line));

    ho.controller = "none";
    ho.telemetrySink = opts_.generatorSink;
    generator_ = std::make_unique<Host>(sim_, opts_.makeDevice(sim_),
                                        std::move(ho));
    if (opts_.reserveBios > 0)
        log_.reserve(opts_.reserveBios);
    generator_->device().setServiceLog(&log_);
    generator_->layer().setMergeEnabled(false);
    generator_->layer().setController(
        std::make_unique<TapController>(*this));

    for (size_t k = 0; k < specs.size(); ++k) {
        controllers::ControllerSpec &spec = specs[k];
        lanes_.emplace_back(
            sim_, log_, generator_->device().queueDepth(),
            generator_->device().modelName() + "+lane" +
                std::to_string(k),
            opts_);
        Lane &lane = lanes_.back();
        lane.specLine = opts_.specs[k];
        if (spec.name == "iocost") {
            // Lanes never arm their own planning timer; planning is
            // batched per period group below.
            spec.iocost.externalPlanning = true;
        }
        lane.layer.setMergeEnabled(false);
        // The lanes share the stream's error-handling policy (it is
        // part of the fault spec, not of any controller config).
        lane.layer.setRetryPolicy(generator_->layer().retryPolicy());
        if (!opts_.laneSinks.empty() &&
            opts_.laneSinks[k] != nullptr)
            lane.layer.setTelemetrySink(opts_.laneSinks[k]);
        lane.layer.telemetry().setDetail(opts_.telemetryDetail);
        lane.layer.setController(controllers::makeController(spec));
        lane.iocost =
            dynamic_cast<core::IoCost *>(lane.layer.controller());
    }

    // Group the iocost lanes by planning period: one timer per
    // distinct period runs the member passes back to back. Each
    // instance's planning is independent (it reads only its own lane
    // state), so batch order cannot change results.
    for (Lane &lane : lanes_) {
        if (lane.iocost == nullptr)
            continue;
        const sim::Time period = lane.iocost->period();
        PlanGroup *group = nullptr;
        for (PlanGroup &pg : planGroups_) {
            if (pg.period == period) {
                group = &pg;
                break;
            }
        }
        if (group == nullptr) {
            planGroups_.emplace_back();
            group = &planGroups_.back();
            group->period = period;
        }
        group->members.push_back(lane.iocost);
    }
    for (PlanGroup &pg : planGroups_) {
        pg.timer.emplace(sim_, pg.period,
                         [this, members = &pg.members] {
                             // Planning consumes the period latency
                             // histograms and emits period telemetry:
                             // the deferred fused accounting must
                             // land first.
                             if (fused_)
                                 fused_->flushDeferred();
                             for (core::IoCost *c : *members)
                                 c->runPlanning();
                             // Planning boundaries are the fused
                             // path's refusion points: waitqs were
                             // just kicked under the new vrate, so a
                             // reconverged lane is quiescent here.
                             if (fused_)
                                 fused_->onPlanBoundary();
                         });
        pg.timer->start();
    }

    // Fused K-wide fast path, when the byte-identity preconditions
    // hold: at most 64 lanes (the record bitmask), no per-completion
    // detail telemetry (fused completions skip per-lane emission),
    // and at least one iocost lane (other mechanisms always run the
    // full path). Lanes that never fuse are simply cloned to by the
    // observer, same as the non-observer loop.
    if (opts_.fusedObserver && !opts_.telemetryDetail &&
        lanes_.size() <= 64) {
        bool any_iocost = false;
        for (Lane &lane : lanes_)
            any_iocost = any_iocost || lane.iocost != nullptr;
        if (any_iocost) {
            fused_ = std::make_unique<FusedObserver>(
                sim_, generator_->layer(), log_,
                generator_->device().queueDepth());
            for (Lane &lane : lanes_)
                fused_->addLane(lane.layer, lane.device,
                                lane.iocost);
            fused_->start();
        }
    }

    resolveScratch_.reserve(lanes_.size());
    log_.addListener([this](uint64_t id) { onLogEvent(id); });
}

void
SweepRunner::onLogEvent(uint64_t id)
{
    // The observer consumes the id's fused record first: an Ok
    // outcome schedules the batched fused completion, an error
    // outcome forks real parked bios that the per-lane pass below
    // then resolves exactly like full-path bios.
    if (fused_)
        fused_->onLogEvent(id);

    resolveScratch_.clear();
    for (Lane &lane : lanes_) {
        // Fully-fused lanes park nothing; skip their table probe.
        if (lane.device.pendingCount() == 0)
            continue;
        lane.device.resolveDetached(id, resolveScratch_);
    }

    // Group the resolutions by service duration — in lockstep every
    // lane resolves to the same log entry, so the usual outcome is
    // one batch completing all K lane bios with a single event.
    // (Durations can differ when divergent retry schedules clamp to
    // different attempts; each distinct value gets its own batch.)
    while (!resolveScratch_.empty()) {
        const sim::Time d = resolveScratch_.front().duration;
        const uint32_t slot = allocBatch();
        ReplayBatch &batch = batchPool_[slot];
        batch.duration = d;
        for (size_t i = 0; i < resolveScratch_.size();) {
            if (resolveScratch_[i].duration == d) {
                batch.items.push_back(
                    std::move(resolveScratch_[i]));
                resolveScratch_[i] = std::move(
                    resolveScratch_.back());
                resolveScratch_.pop_back();
            } else {
                ++i;
            }
        }
        sim_.at(sim_.now() + d,
                [this, slot] { fireBatch(slot); });
    }
}

uint32_t
SweepRunner::allocBatch()
{
    if (freeBatch_ != kNoBatch) {
        const uint32_t slot = freeBatch_;
        freeBatch_ = batchPool_[slot].nextFree;
        return slot;
    }
    batchPool_.emplace_back();
    batchPool_.back().items.reserve(lanes_.size());
    return static_cast<uint32_t>(batchPool_.size() - 1);
}

void
SweepRunner::fireBatch(uint32_t slot)
{
    // Take the items by move: delivering a completion can re-enter
    // batch allocation (a lane controller dispatches queued bios),
    // which may reallocate batchPool_ under us — so hold no
    // references across the loop, and keep the slot off the
    // freelist until delivery is done.
    std::vector<device::ReplayDevice::Resolved> items =
        std::move(batchPool_[slot].items);
    const sim::Time d = batchPool_[slot].duration;
    for (device::ReplayDevice::Resolved &r : items)
        r.dev->finishReplayed(std::move(r.bio), d);
    // Hand the buffer back (capacity retained) and free the slot so
    // its next use stays allocation-free.
    items.clear();
    batchPool_[slot].items = std::move(items);
    batchPool_[slot].nextFree = freeBatch_;
    freeBatch_ = slot;
}

cgroup::CgroupId
SweepRunner::addWorkload(const std::string &name, uint32_t weight)
{
    const cgroup::CgroupId id = generator_->addWorkload(name, weight);
    for (Lane &lane : lanes_) {
        const cgroup::CgroupId lid =
            lane.tree.create(lane.workload, name, weight);
        if (lid != id)
            throw std::logic_error("sweep: lane cgroup id drift");
    }
    workloadCgroups_.emplace_back(name, id);
    return id;
}

cgroup::CgroupId
SweepRunner::addSystemService(const std::string &name,
                              uint32_t weight)
{
    const cgroup::CgroupId id =
        generator_->addSystemService(name, weight);
    for (Lane &lane : lanes_) {
        const cgroup::CgroupId lid =
            lane.tree.create(lane.system, name, weight);
        if (lid != id)
            throw std::logic_error("sweep: lane cgroup id drift");
    }
    return id;
}

void
SweepRunner::cloneToLanes(const blk::Bio &bio)
{
    if (fused_) {
        fused_->onGeneratorBio(bio);
        return;
    }
    for (Lane &lane : lanes_) {
        blk::BioPtr clone =
            blk::Bio::make(bio.op, bio.offset, bio.size, bio.cgroup);
        clone->swap = bio.swap;
        clone->meta = bio.meta;
        clone->wb = bio.wb;
        lane.layer.submit(std::move(clone));
    }
}

void
SweepRunner::onGeneratorFinal(const blk::Bio &bio)
{
    log_.close(bio.id);
}

void
SweepRunner::resetStats()
{
    // Land (then discard with the rest) any deferred fused window —
    // matching the full path, which records before the caller cuts.
    if (fused_)
        fused_->flushDeferred();
    generator_->layer().resetStats();
    for (Lane &lane : lanes_)
        lane.layer.resetStats();
}

} // namespace iocost::host
