/**
 * @file
 * The IOCost IO controller (paper §3).
 *
 * Control is split into two paths:
 *
 *  - the **issue path** runs synchronously per bio: compute the
 *    absolute cost from the device model, divide by the issuing
 *    cgroup's cached hierarchical weight to get the relative cost,
 *    and compare against the budget implied by how far the local
 *    vtime trails the global vtime. Bios that fit are dispatched
 *    immediately; the rest wait on a per-cgroup queue with a timer
 *    armed for when the budget will suffice.
 *
 *  - the **planning path** runs once per period: it deactivates idle
 *    cgroups, adjusts the global vrate from the device feedback
 *    signals (completion-latency targets and request depletion), and
 *    runs the budget-donation algorithm so under-consuming cgroups
 *    lend their share to the rest.
 *
 * Swap and filesystem-metadata bios are never throttled
 * synchronously; their cost becomes per-cgroup *debt* repaid from
 * future budget, with a return-to-userspace delay hook for cgroups
 * that generate "free" IO only (§3.5).
 */

#ifndef IOCOST_CORE_IOCOST_HH
#define IOCOST_CORE_IOCOST_HH

#include <cstdint>
#include <deque>
#include <functional>
#include <optional>
#include <vector>

#include "blk/block_layer.hh"
#include "blk/io_controller.hh"
#include "core/cost_model.hh"
#include "core/donation.hh"
#include "core/qos.hh"
#include "sim/fifo_ring.hh"
#include "sim/simulator.hh"
#include "stat/histogram.hh"
#include "stat/time_series.hh"

namespace iocost::host {
class FusedObserver;
}

namespace iocost::core {

/**
 * How swap/metadata IO is charged — the production debt mechanism
 * plus the two deliberately broken variants evaluated in Fig. 15.
 */
enum class DebtMode
{
    /** §3.5: issue immediately, charge debt to the owning cgroup. */
    Production,
    /** Charge swap IO to the root: never throttled at all. */
    RootCharge,
    /** Throttle swap IO like normal IO: priority inversion. */
    Inversion,
};

/**
 * Custom cost program (the paper's "arbitrary eBPF program" hook,
 * §3.2): receives the bio and the sequentiality classification and
 * returns the absolute cost in device-occupancy nanoseconds. When
 * set, it replaces the built-in linear model on the issue path.
 */
using CostProgram =
    std::function<sim::Time(const blk::Bio &, bool sequential)>;

/** Static configuration for one IoCost instance. */
struct IoCostConfig
{
    CostModel model;
    QosParams qos;
    bool donationEnabled = true;
    DebtMode debtMode = DebtMode::Production;
    /** Optional programmable cost model overriding `model`. */
    CostProgram costProgram;
    /**
     * When set, attach() arms no planning timer: an external driver
     * (the sweep runner's per-period planning group) calls
     * runPlanning() itself, batching the planner math of many
     * instances back to back over contiguous state.
     */
    bool externalPlanning = false;
};

/**
 * The IOCost controller.
 */
class IoCost : public blk::IoController
{
  public:
    explicit IoCost(IoCostConfig config);
    ~IoCost() override;

    blk::ControllerCaps caps() const override;
    void attach(blk::BlockLayer &layer) override;
    void onSubmit(blk::BioPtr bio) override;
    void onComplete(const blk::Bio &bio,
                    const blk::CompletionInfo &info) override;
    void onError(const blk::Bio &bio,
                 const blk::CompletionInfo &info) override;
    sim::Time userspaceDelay(cgroup::CgroupId cg) override;

    /** Online model update (Fig. 13). Takes effect immediately. */
    void setModel(const CostModel &model) { config_.model = model; }

    /**
     * Install or clear (pass nullptr) a programmable cost model;
     * takes effect for the next submitted bio.
     */
    void
    setCostProgram(CostProgram program)
    {
        config_.costProgram = std::move(program);
    }

    /** The active model. */
    const CostModel &model() const { return config_.model; }

    /** Current vrate multiplier (1.0 = 100%). */
    double vrate() const { return vrate_; }

    /** Global vtime (ns of modeled device occupancy granted). */
    double gvtime() const { return gvtime_; }

    /** Outstanding absolute debt of @p cg (device-occupancy ns). */
    double debt(cgroup::CgroupId cg) const;

    /** Bios currently throttled (waiting) for @p cg. */
    size_t waitingCount(cgroup::CgroupId cg) const;

    /**
     * Cumulative per-cgroup statistics, mirroring the cost.* keys
     * the kernel exposes in io.stat.
     */
    struct IocgStat
    {
        /** Total absolute cost charged (device-occupancy usec). */
        uint64_t usageUs = 0;
        /** Total time bios spent throttled in the waitq (usec). */
        uint64_t waitUs = 0;
        /** Total time the cgroup carried unpaid debt (usec). */
        uint64_t indebtUs = 0;
        /** Total return-to-userspace delay handed out (usec). */
        uint64_t indelayUs = 0;
    };

    /** Read @p cg's cumulative statistics. */
    IocgStat stat(cgroup::CgroupId cg) const;

    /**
     * io.stat-format line for @p cg:
     * "cost.vrate=... cost.usage=... cost.wait=... cost.indebt=...
     *  cost.indelay=...".
     */
    std::string statLine(cgroup::CgroupId cg) const;

    /** vrate samples recorded at every planning pass. */
    const stat::TimeSeries &vrateSeries() const
    {
        return vrateSeries_;
    }

    /** Effective planning period. */
    sim::Time period() const
    {
        return config_.qos.effectivePeriod();
    }

    /** Run one planning pass now (tests drive this directly). */
    void runPlanning();

    /**
     * @name Fused-sweep entry points (host::FusedObserver).
     *
     * The sweep's fused observer runs one K-wide loop per generator
     * bio over lockstep lanes, skipping bio materialization. These
     * hooks let it drive the issue/complete paths with exactly the
     * mutations onSubmit/onComplete would make, in the same order,
     * on the same authoritative Iocg state — so a lane can fall back
     * to the full path (fork) or rejoin the fused loop (refuse) at
     * any bio boundary with byte-identical results.
     * @{
     */

    /** What fusedIssue() decided for one lane. */
    enum class FusedVerdict
    {
        /** Admitted: charged (or debt-charged) and dispatched. */
        Dispatched,
        /**
         * Over budget. No queue mutation was performed — the caller
         * must materialize the bio and hand it to fusedQueue(),
         * because a throttled lane leaves the fused path.
         */
        Queued,
    };

    /**
     * The issue path (onSubmit) for one fused bio: identical
     * mutations up to the admission decision, minus the bio itself.
     * @p abs_cost is the model cost the observer computed once for
     * all lanes sharing this lane's CostModel; sequentiality is
     * likewise classified once upstream (every lane observes the
     * same per-cgroup stream, so lastEnd agrees across lanes — it is
     * still maintained here for the fall-back path).
     */
    FusedVerdict fusedIssue(cgroup::CgroupId cg, uint64_t offset,
                            uint32_t size, bool swap_io, bool meta_io,
                            bool wb_io, double abs_cost);

    /**
     * Complete a Queued verdict: park the now-materialized bio on
     * the waitq exactly as onSubmit's tail would have.
     */
    void fusedQueue(cgroup::CgroupId cg, blk::BioPtr bio);

    /**
     * The completion path (onComplete) for one fused bio. Fused
     * completions are always status-Ok — error outcomes fork to the
     * full path before any completion is delivered.
     */
    void fusedComplete(cgroup::CgroupId cg, blk::Op op,
                       sim::Time device_latency);

    /**
     * True when no cgroup is throttled (empty waitqs, no pending
     * kick timers) — the controller-side condition for re-fusing a
     * diverged lane.
     */
    bool fusedQuiescent() const;

    /**
     * Whether a programmable cost model is installed. Cost programs
     * take a materialized bio, so lanes running one never fuse.
     */
    bool hasCostProgram() const
    {
        return static_cast<bool>(config_.costProgram);
    }
    /** @} */

    /**
     * @name Snapshot support.
     *
     * Everything the issue and planning paths evolve is serialized:
     * the per-iocg table (including throttled bios and kick timers),
     * the global vtime/vrate couple, the QoS latency windows, and
     * the planning timer. The model and QoS parameters ride along
     * too — what-if queries mutate them (setModel), so a restore
     * must roll them back. donorScratch_/donationScratch_ are
     * scratch capacity, not state.
     * @{
     */
    void saveState(sim::StateWriter &w) const override;
    void loadState(sim::StateReader &r) override;
    /** @} */

  private:
    /**
     * The fused observer inlines the common admit-and-charge case of
     * the issue path (plus the outstanding/busy completion tick)
     * against cached Iocg pointers and hierarchical weights, and
     * merges deferred period-histogram state at its flush points.
     * Every mutation it makes is exactly one this class's own paths
     * make; anything beyond the straight-line case falls back to
     * fusedIssue() above.
     */
    friend class iocost::host::FusedObserver;

    /** Per-cgroup controller state ("iocg"). */
    struct Iocg
    {
        /** Local vtime; budget = gvtime - vtime. */
        double vtime = 0.0;
        /** Unpaid absolute cost from swap/metadata IO. */
        double absDebt = 0.0;
        /** Absolute cost charged during the current period. */
        double absUsage = 0.0;
        /** Last submission, for idle detection. */
        sim::Time lastIo = 0;
        /** Whether the cgroup is currently activated. */
        bool active = false;
        /** True if any bio waited during the current period. */
        bool hadWait = false;
        /** End offset of the last IO, for sequential detection. */
        uint64_t lastEnd = UINT64_MAX;
        /** Bios dispatched to the device and not yet completed. */
        unsigned outstanding = 0;
        /** Time the cgroup last transitioned to outstanding > 0. */
        sim::Time busySince = 0;
        /** Accumulated busy (outstanding > 0) time this period. */
        sim::Time busyAccum = 0;
        /** Waitq time accumulated during the current period. */
        sim::Time periodWait = 0;
        /** Throttled bios in submission order. A FifoRing, not a
         *  deque: under sustained throttling the queue cycles
         *  bios continuously and must not churn the allocator. */
        sim::FifoRing<blk::BioPtr> waiting;
        /** Pending wakeup for the waiting queue. */
        sim::EventHandle kick;

        /** @name Cumulative io.stat counters (ns internally).
         *  @{ */
        double statUsage = 0.0;
        sim::Time statWait = 0;
        sim::Time statIndebt = 0;
        sim::Time statIndelay = 0;
        /** Start of the current in-debt episode (debt > 0). */
        sim::Time debtSince = 0;
        /** @} */
    };

    Iocg &iocg(cgroup::CgroupId cg);
    const Iocg *iocgIfPresent(cgroup::CgroupId cg) const;

    /** Advance gvtime to now at the current vrate. */
    void updateGvtime();

    /** Budget cap in gvtime units. */
    double budgetCap() const;

    /** Activate an idle cgroup, granting a fresh initial budget. */
    void activate(cgroup::CgroupId cg, Iocg &st);

    /** Pay outstanding debt from available budget. */
    void payDebt(cgroup::CgroupId cg, Iocg &st);

    /** Try to dispatch waiting bios; re-arm the kick timer. */
    void kickWaiters(cgroup::CgroupId cg);

    /** Dispatch one bio, maintaining busy-time accounting. */
    void dispatchTracked(blk::BioPtr bio, Iocg &st);

    /** Charge and dispatch one bio unconditionally. */
    void chargeAndDispatch(blk::BioPtr bio, Iocg &st,
                           double abs_cost, double hw);

    /** dispatchTracked() minus the dispatch (fused issue path). */
    void fusedDispatchTick(Iocg &st);

    /** Planning-path vrate adjustment from device feedback. */
    void adjustVrate(sim::Time elapsed);

    /** Planning-path donation pass. */
    void planDonation(double avg_vrate, sim::Time elapsed);

    /**
     * Publish the period's records (vrate, QoS latency percentiles,
     * per-cgroup usage/wait/debt/hweight) into the block layer's
     * telemetry bus. Runs just before the period-local accounting is
     * reset, so the records describe the completed period.
     */
    void emitPeriodTelemetry(sim::Time now, sim::Time elapsed,
                             double avg_vrate);

    /**
     * Failed device attempts observed within the current period.
     * An error burst reads as saturation: a device that is dropping
     * requests is not delivering its modeled capacity, so
     * adjustVrate treats it like request depletion (§3.3).
     */
    static constexpr uint64_t kErrorBurstThreshold = 8;

    IoCostConfig config_;
    sim::Simulator *sim_ = nullptr;
    cgroup::CgroupTree *tree_ = nullptr;

    /**
     * Per-cgroup table. Must be a deque (stable storage), never a
     * vector: the issue path holds `Iocg &st` across
     * chargeAndDispatch -> layer().dispatch(), and a dispatch can
     * run completions inline (timeout expiry) whose callbacks may
     * submit from a previously-unseen cgroup id and grow this table
     * — contiguous storage would leave `st` dangling.
     */
    std::deque<Iocg> iocgs_;

    double gvtime_ = 0.0;
    double vrate_ = 1.0;
    sim::Time lastGvtimeUpdate_ = 0;

    sim::Time lastPlanning_ = 0;
    double gvtimeAtPlanning_ = 0.0;

    /** Completion latencies within the current period. */
    stat::Histogram periodReadLat_;
    stat::Histogram periodWriteLat_;
    /** Failed device attempts within the current period. */
    uint64_t periodErrors_ = 0;
    /** Whether the last planning pass consumed each histogram. */
    bool latReadReady_ = false;
    bool latWriteReady_ = false;

    stat::TimeSeries vrateSeries_;

    /**
     * Donor list reused across planning passes (capacity sticks), so
     * the per-period planner math stays allocation-free in steady
     * state — the sweep bench gates this under --check-allocs.
     */
    std::vector<DonorTarget> donorScratch_;
    DonationScratch donationScratch_;

    std::optional<sim::PeriodicTimer> planningTimer_;
};

} // namespace iocost::core

#endif // IOCOST_CORE_IOCOST_HH
