/**
 * @file
 * The work-conserving budget-donation weight-tree update (paper §3.6).
 *
 * Given a set of donor leaves and the hweight each wants to shrink
 * to, compute the lowered `inuse` weights along the paths from the
 * donors to the root such that:
 *
 *  - every donor leaf's hweight becomes exactly its target;
 *  - every other node's weight is untouched, yet its recomputed
 *    hweight absorbs the freed share proportionally to its original
 *    hweight.
 *
 * The update maintains the paper's two invariants:
 *
 *   (4)  (h - d) / (h_p - d_p) is preserved: the proportion of a
 *        parent's non-donating hweight held by each child does not
 *        change;
 *   (5)  s * (h_p - d_p) / h_p is preserved: the total sibling
 *        weight attributable to non-donating shares does not change;
 *
 * giving the per-node derivations
 *
 *   h' = (h - d) / (h_p - d_p) * (h'_p - d'_p) + d'
 *   s' = s * ((h_p - d_p) / h_p) * (h'_p / (h'_p - d'_p))
 *   w' = s' * h' / h'_p
 *
 * applied top-down along donor paths only, which is what keeps the
 * planning path cheap on large hierarchies.
 */

#ifndef IOCOST_CORE_DONATION_HH
#define IOCOST_CORE_DONATION_HH

#include <vector>

#include "cgroup/cgroup_tree.hh"

namespace iocost::core {

/** One donor: a leaf and the hweight share it should shrink to. */
struct DonorTarget
{
    cgroup::CgroupId leaf;
    /** Desired post-donation hweight; must be < current hweight. */
    double targetHweight;
};

/**
 * Reusable working memory for applyDonation. The planning pass runs
 * every period on every controller instance, so its scratch must be
 * owned by the caller and warm after the first pass — four vectors
 * sized by the tree, re-filled but never reallocated while the tree
 * size is stable.
 */
struct DonationScratch
{
    std::vector<double> d, dp, hprime;
    std::vector<cgroup::CgroupId> stack;
};

/**
 * Apply the donation weight-tree update.
 *
 * Resets every node's inuse to its configured weight, then lowers
 * inuse along the donor paths so that each donor's hweightInuse
 * equals its target. Donors whose target is not strictly below their
 * current hweightActive are ignored. Inactive donors are ignored.
 *
 * @param tree The hierarchy to update.
 * @param donors Donor leaves with their target hweights.
 * @param scratch Caller-owned working memory (see DonationScratch).
 * @return Number of donors actually applied.
 */
size_t applyDonation(cgroup::CgroupTree &tree,
                     const std::vector<DonorTarget> &donors,
                     DonationScratch &scratch);

/** Convenience overload with throwaway scratch (tests, one-shots). */
size_t applyDonation(cgroup::CgroupTree &tree,
                     const std::vector<DonorTarget> &donors);

} // namespace iocost::core

#endif // IOCOST_CORE_DONATION_HH
