/**
 * @file
 * Parsers for the kernel's io.cost configuration interfaces.
 *
 * Production iocost is configured through two cgroup files whose
 * payloads are space-separated key=value lines:
 *
 *   io.cost.model:  8:0 ctrl=user model=linear rbps=... rseqiops=...
 *                   rrandiops=... wbps=... wseqiops=... wrandiops=...
 *   io.cost.qos:    8:0 enable=1 ctrl=user rpct=95.00 rlat=5000
 *                   wpct=95.00 wlat=5000 min=50.00 max=150.00
 *
 * These helpers parse and emit that exact format so model/QoS
 * configurations round-trip between this library and a real kernel
 * (percent-denominated min/max and microsecond-denominated
 * latencies included).
 */

#ifndef IOCOST_CORE_CONFIG_PARSE_HH
#define IOCOST_CORE_CONFIG_PARSE_HH

#include <optional>
#include <string>
#include <vector>

#include "core/cost_model.hh"
#include "core/qos.hh"

namespace iocost::core {

/** Split a config line into whitespace-separated tokens. */
std::vector<std::string> configTokens(const std::string &line);

/**
 * Split one "key=value" token into key and value.
 * @return false on syntax error (missing '=', empty key or value).
 */
bool configKeyValue(const std::string &tok, std::string &key,
                    std::string &value);

/** Parse a strictly positive number; returns false on garbage. */
bool configPositiveNumber(const std::string &s, double &out);

/**
 * Parse an io.cost.model line.
 *
 * Unknown keys are ignored (forward compatibility); a leading
 * device number ("8:0") and ctrl=/model= markers are accepted and
 * skipped. Returns std::nullopt on malformed key=value syntax or a
 * non-positive rate.
 */
std::optional<LinearModelConfig>
parseModelLine(const std::string &line);

/** Emit the io.cost.model payload for @p cfg (without dev number). */
std::string formatModelLine(const LinearModelConfig &cfg);

/**
 * Parse an io.cost.qos line (rpct/rlat/wpct/wlat/min/max keys;
 * percentiles in percent, latencies in microseconds, min/max in
 * percent of the model rate). Missing keys keep their defaults.
 */
std::optional<QosParams> parseQosLine(const std::string &line);

/** Emit the io.cost.qos payload for @p qos (without dev number). */
std::string formatQosLine(const QosParams &qos);

} // namespace iocost::core

#endif // IOCOST_CORE_CONFIG_PARSE_HH
