#include "core/config_parse.hh"

#include <cstdio>
#include <sstream>
#include <vector>

namespace iocost::core {

std::vector<std::string>
configTokens(const std::string &line)
{
    std::vector<std::string> out;
    std::istringstream in(line);
    std::string tok;
    while (in >> tok)
        out.push_back(tok);
    return out;
}

bool
configKeyValue(const std::string &tok, std::string &key,
               std::string &value)
{
    const auto eq = tok.find('=');
    if (eq == std::string::npos || eq == 0 ||
        eq + 1 >= tok.size()) {
        return false;
    }
    key = tok.substr(0, eq);
    value = tok.substr(eq + 1);
    return true;
}

bool
configPositiveNumber(const std::string &s, double &out)
{
    char *end = nullptr;
    const double v = std::strtod(s.c_str(), &end);
    if (end == nullptr || *end != '\0' || !(v > 0))
        return false;
    out = v;
    return true;
}

namespace {

/** @return true if the token looks like a "MAJ:MIN" device id. */
bool
isDevNumber(const std::string &tok)
{
    return tok.find('=') == std::string::npos &&
           tok.find(':') != std::string::npos;
}

} // namespace

std::optional<LinearModelConfig>
parseModelLine(const std::string &line)
{
    LinearModelConfig cfg;
    bool any = false;
    for (const std::string &tok : configTokens(line)) {
        if (isDevNumber(tok))
            continue;
        std::string key, value;
        if (!configKeyValue(tok, key, value))
            return std::nullopt;
        if (key == "ctrl" || key == "model")
            continue; // "ctrl=user model=linear" markers
        double v = 0;
        if (!configPositiveNumber(value, v))
            return std::nullopt;
        if (key == "rbps") {
            cfg.rbps = v;
        } else if (key == "rseqiops") {
            cfg.rseqiops = v;
        } else if (key == "rrandiops") {
            cfg.rrandiops = v;
        } else if (key == "wbps") {
            cfg.wbps = v;
        } else if (key == "wseqiops") {
            cfg.wseqiops = v;
        } else if (key == "wrandiops") {
            cfg.wrandiops = v;
        } else {
            continue; // unknown key: ignore
        }
        any = true;
    }
    if (!any)
        return std::nullopt;
    return cfg;
}

std::string
formatModelLine(const LinearModelConfig &cfg)
{
    char buf[256];
    std::snprintf(buf, sizeof(buf),
                  "ctrl=user model=linear rbps=%.0f rseqiops=%.0f "
                  "rrandiops=%.0f wbps=%.0f wseqiops=%.0f "
                  "wrandiops=%.0f",
                  cfg.rbps, cfg.rseqiops, cfg.rrandiops, cfg.wbps,
                  cfg.wseqiops, cfg.wrandiops);
    return buf;
}

std::optional<QosParams>
parseQosLine(const std::string &line)
{
    QosParams qos;
    bool any = false;
    for (const std::string &tok : configTokens(line)) {
        if (isDevNumber(tok))
            continue;
        std::string key, value;
        if (!configKeyValue(tok, key, value))
            return std::nullopt;
        if (key == "ctrl" || key == "enable")
            continue;
        double v = 0;
        if (!configPositiveNumber(value, v))
            return std::nullopt;
        if (key == "rpct") {
            qos.readLatQuantile = v / 100.0;
        } else if (key == "rlat") {
            qos.readLatTarget =
                static_cast<sim::Time>(v * sim::kUsec);
        } else if (key == "wpct") {
            qos.writeLatQuantile = v / 100.0;
        } else if (key == "wlat") {
            qos.writeLatTarget =
                static_cast<sim::Time>(v * sim::kUsec);
        } else if (key == "min") {
            qos.vrateMin = v / 100.0;
        } else if (key == "max") {
            qos.vrateMax = v / 100.0;
        } else {
            continue;
        }
        any = true;
    }
    if (!any)
        return std::nullopt;
    if (qos.vrateMin > qos.vrateMax)
        return std::nullopt;
    return qos;
}

std::string
formatQosLine(const QosParams &qos)
{
    char buf[256];
    std::snprintf(buf, sizeof(buf),
                  "enable=1 ctrl=user rpct=%.2f rlat=%.0f "
                  "wpct=%.2f wlat=%.0f min=%.2f max=%.2f",
                  100.0 * qos.readLatQuantile,
                  sim::toMicros(qos.readLatTarget),
                  100.0 * qos.writeLatQuantile,
                  sim::toMicros(qos.writeLatTarget),
                  100.0 * qos.vrateMin, 100.0 * qos.vrateMax);
    return buf;
}

} // namespace iocost::core
