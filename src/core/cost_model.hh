/**
 * @file
 * The IOCost linear device cost model (paper §3.2).
 *
 * The absolute cost of a bio estimates its *device occupancy* — not
 * its latency — in nanoseconds of device time:
 *
 *     io_cost = base_cost(op, sequential) + size_cost_rate(op) * size
 *
 * Six parameters: four base costs (read/write x rand/seq) and two
 * per-byte rates (read/write). The user-facing configuration format
 * matches the kernel's io.cost.model knobs (Fig. 6 of the paper):
 * read/write bytes-per-second plus 4k sequential/random IOPS, which
 * translate internally via Eqs. 2-3:
 *
 *     size_cost_rate = 1 sec / Bps
 *     base_cost      = 1 sec / IOPS_4k - size_cost_rate * 4096
 */

#ifndef IOCOST_CORE_COST_MODEL_HH
#define IOCOST_CORE_COST_MODEL_HH

#include <cstdint>

#include "blk/bio.hh"
#include "sim/time.hh"

namespace iocost::core {

/**
 * User-facing model configuration (what the profiler emits and the
 * administrator deploys). All rates are sustainable peaks.
 */
struct LinearModelConfig
{
    /** Peak read throughput, bytes/sec. */
    double rbps = 488636629;
    /** Peak sequential 4k read IOPS. */
    double rseqiops = 8932;
    /** Peak random 4k read IOPS. */
    double rrandiops = 8518;
    /** Peak write throughput, bytes/sec. */
    double wbps = 427891549;
    /** Peak sequential 4k write IOPS. */
    double wseqiops = 28755;
    /** Peak random 4k write IOPS. */
    double wrandiops = 21940;
};

/**
 * Compiled linear cost model.
 */
class CostModel
{
  public:
    /** Identity-ish default; use fromConfig() in real setups. */
    CostModel() = default;

    /** Compile the six internal parameters from a configuration. */
    static CostModel fromConfig(const LinearModelConfig &cfg);

    /**
     * Absolute cost (device occupancy, ns) of one IO.
     *
     * @param op Direction.
     * @param sequential Whether the IO continues the issuing
     *        cgroup's previous IO.
     * @param size Transfer size in bytes.
     */
    sim::Time
    cost(blk::Op op, bool sequential, uint32_t size) const
    {
        const bool read = op == blk::Op::Read;
        const double base =
            read ? (sequential ? readBaseSeq_ : readBaseRand_)
                 : (sequential ? writeBaseSeq_ : writeBaseRand_);
        const double rate = read ? readNsPerByte_ : writeNsPerByte_;
        const double c = base + rate * static_cast<double>(size);
        return c < 1.0 ? 1 : static_cast<sim::Time>(c);
    }

    /**
     * Scale every parameter's implied device capability by
     * @p factor (>1 claims a faster device, so costs shrink).
     * Models the online parameter updates of Fig. 13.
     */
    void scaleCapability(double factor);

    /** @name Internal parameters (ns / ns-per-byte), for tests.
     *  @{ */
    double readBaseSeq() const { return readBaseSeq_; }
    double readBaseRand() const { return readBaseRand_; }
    double writeBaseSeq() const { return writeBaseSeq_; }
    double writeBaseRand() const { return writeBaseRand_; }
    double readNsPerByte() const { return readNsPerByte_; }
    double writeNsPerByte() const { return writeNsPerByte_; }
    /** @} */

  private:
    double readBaseSeq_ = 100e3;
    double readBaseRand_ = 110e3;
    double writeBaseSeq_ = 30e3;
    double writeBaseRand_ = 40e3;
    double readNsPerByte_ = 2.0;
    double writeNsPerByte_ = 2.0;
};

} // namespace iocost::core

#endif // IOCOST_CORE_COST_MODEL_HH
