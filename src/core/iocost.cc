#include "core/iocost.hh"

#include <algorithm>
#include <cmath>

#include <string>

#include "blk/bio_state.hh"
#include "core/donation.hh"
#include "sim/logging.hh"

namespace iocost::core {

namespace {

constexpr double kEps = 1e-9;

} // namespace

IoCost::IoCost(IoCostConfig config)
    : config_(std::move(config)), vrateSeries_("vrate")
{}

IoCost::~IoCost() = default;

blk::ControllerCaps
IoCost::caps() const
{
    return blk::ControllerCaps{
        .name = "iocost",
        .lowOverhead = true,
        .workConserving = true,
        .memoryManagementAware = true,
        .proportionalFairness = true,
        .cgroupControl = true,
    };
}

void
IoCost::attach(blk::BlockLayer &layer)
{
    IoController::attach(layer);
    sim_ = &layer.sim();
    tree_ = &layer.cgroups();
    lastGvtimeUpdate_ = sim_->now();
    lastPlanning_ = sim_->now();
    gvtimeAtPlanning_ = gvtime_;
    if (!config_.externalPlanning) {
        planningTimer_.emplace(*sim_, period(),
                               [this] { runPlanning(); });
        planningTimer_->start();
    }
}

IoCost::Iocg &
IoCost::iocg(cgroup::CgroupId cg)
{
    if (cg >= iocgs_.size())
        iocgs_.resize(cg + 1);
    return iocgs_[cg];
}

const IoCost::Iocg *
IoCost::iocgIfPresent(cgroup::CgroupId cg) const
{
    return cg < iocgs_.size() ? &iocgs_[cg] : nullptr;
}

double
IoCost::debt(cgroup::CgroupId cg) const
{
    const Iocg *st = iocgIfPresent(cg);
    return st ? st->absDebt : 0.0;
}

size_t
IoCost::waitingCount(cgroup::CgroupId cg) const
{
    const Iocg *st = iocgIfPresent(cg);
    return st ? st->waiting.size() : 0;
}

IoCost::IocgStat
IoCost::stat(cgroup::CgroupId cg) const
{
    IocgStat out;
    const Iocg *st = iocgIfPresent(cg);
    if (!st)
        return out;
    out.usageUs = static_cast<uint64_t>(st->statUsage / 1e3);
    out.waitUs = static_cast<uint64_t>(st->statWait / 1000);
    sim::Time indebt = st->statIndebt;
    if (st->absDebt > 0.0)
        indebt += sim_->now() - st->debtSince;
    out.indebtUs = static_cast<uint64_t>(indebt / 1000);
    out.indelayUs = static_cast<uint64_t>(st->statIndelay / 1000);
    return out;
}

std::string
IoCost::statLine(cgroup::CgroupId cg) const
{
    const IocgStat s = stat(cg);
    char buf[192];
    std::snprintf(buf, sizeof(buf),
                  "cost.vrate=%.2f cost.usage=%llu cost.wait=%llu "
                  "cost.indebt=%llu cost.indelay=%llu",
                  vrate_ * 100.0,
                  static_cast<unsigned long long>(s.usageUs),
                  static_cast<unsigned long long>(s.waitUs),
                  static_cast<unsigned long long>(s.indebtUs),
                  static_cast<unsigned long long>(s.indelayUs));
    return buf;
}

void
IoCost::updateGvtime()
{
    const sim::Time now = sim_->now();
    if (now > lastGvtimeUpdate_) {
        gvtime_ += static_cast<double>(now - lastGvtimeUpdate_) *
                   vrate_;
        lastGvtimeUpdate_ = now;
    }
}

double
IoCost::budgetCap() const
{
    return config_.qos.budgetCapPeriods *
           static_cast<double>(period()) * vrate_;
}

void
IoCost::activate(cgroup::CgroupId cg, Iocg &st)
{
    st.active = true;
    tree_->setActive(cg, true);
    // A fresh activation gets a quarter-period of budget so short
    // bursts from previously idle groups start without a stall.
    st.vtime = gvtime_ -
               0.25 * static_cast<double>(period()) * vrate_;
    st.absUsage = 0.0;
    st.hadWait = false;
}

void
IoCost::payDebt(cgroup::CgroupId cg, Iocg &st)
{
    if (st.absDebt <= 0.0)
        return;
    const double hw = tree_->hweightInuse(cg);
    if (hw <= kEps)
        return;
    const double avail = gvtime_ - st.vtime;
    if (avail <= 0.0)
        return;
    const double debt_rel = st.absDebt / hw;
    const double pay_rel = std::min(avail, debt_rel);
    st.vtime += pay_rel;
    st.absDebt -= pay_rel * hw;
    if (st.absDebt < kEps) {
        st.absDebt = 0.0;
        st.statIndebt += sim_->now() - st.debtSince;
    }
}

void
IoCost::dispatchTracked(blk::BioPtr bio, Iocg &st)
{
    if (st.outstanding++ == 0)
        st.busySince = sim_->now();
    layer().dispatch(std::move(bio));
}

void
IoCost::chargeAndDispatch(blk::BioPtr bio, Iocg &st,
                          double abs_cost, double hw)
{
    st.vtime += abs_cost / hw;
    st.absUsage += abs_cost;
    st.statUsage += abs_cost;
    st.statWait += sim_->now() - bio->submitTime;
    st.periodWait += sim_->now() - bio->submitTime;
    dispatchTracked(std::move(bio), st);
}

void
IoCost::onSubmit(blk::BioPtr bio)
{
    const cgroup::CgroupId cg = bio->cgroup;
    Iocg &st = iocg(cg);
    const sim::Time now = sim_->now();

    updateGvtime();
    if (!st.active)
        activate(cg, st);
    st.lastIo = now;

    const bool sequential = bio->offset == st.lastEnd;
    st.lastEnd = bio->offset + bio->size;
    const double abs_cost = static_cast<double>(
        config_.costProgram
            ? std::max<sim::Time>(
                  1, config_.costProgram(*bio, sequential))
            : config_.model.cost(bio->op, sequential, bio->size));
    bio->controllerScratch = abs_cost;

    // Swap, metadata, and dirty-writeback IO must not block (§3.5);
    // the production mode turns their cost into debt, the
    // RootCharge ablation foregoes charging entirely.
    if (bio->swap || bio->meta || bio->wb) {
        switch (config_.debtMode) {
          case DebtMode::Production:
            if (st.absDebt == 0.0)
                st.debtSince = now;
            st.absDebt += abs_cost;
            st.absUsage += abs_cost;
            st.statUsage += abs_cost;
            dispatchTracked(std::move(bio), st);
            return;
          case DebtMode::RootCharge:
            dispatchTracked(std::move(bio), st);
            return;
          case DebtMode::Inversion:
            break; // fall through to normal throttling
        }
    }

    double hw = tree_->hweightInuse(cg);
    if (hw <= kEps) {
        // Shouldn't happen for an active cgroup; dispatch unthrottled
        // rather than dividing by zero.
        dispatchTracked(std::move(bio), st);
        return;
    }

    // Anti-hoarding: an idle-ish cgroup may not bank more than the
    // budget cap.
    const double floor = gvtime_ - budgetCap();
    if (st.vtime < floor)
        st.vtime = floor;

    payDebt(cg, st);

    const double rel = abs_cost / hw;
    if (st.waiting.empty() && st.absDebt <= 0.0 &&
        gvtime_ - st.vtime >= rel) {
        chargeAndDispatch(std::move(bio), st, abs_cost, hw);
        return;
    }

    // Over budget. If this cgroup is currently donating, rescind the
    // donation right here in the issue path (§3.6 requirement 3) and
    // retry with the restored share.
    if (std::abs(tree_->inuse(cg) -
                 static_cast<double>(tree_->weight(cg))) > kEps) {
        tree_->setInuse(cg, tree_->weight(cg));
        hw = tree_->hweightInuse(cg);
        const double rel2 = abs_cost / hw;
        if (st.waiting.empty() && st.absDebt <= 0.0 &&
            gvtime_ - st.vtime >= rel2) {
            chargeAndDispatch(std::move(bio), st, abs_cost, hw);
            return;
        }
    }

    st.hadWait = true;
    st.waiting.push_back(std::move(bio));
    if (!st.kick.pending())
        kickWaiters(cg);
}

void
IoCost::fusedDispatchTick(Iocg &st)
{
    if (st.outstanding++ == 0)
        st.busySince = sim_->now();
}

IoCost::FusedVerdict
IoCost::fusedIssue(cgroup::CgroupId cg, uint64_t offset,
                   uint32_t size, bool swap_io, bool meta_io,
                   bool wb_io, double abs_cost)
{
    Iocg &st = iocg(cg);
    const sim::Time now = sim_->now();

    updateGvtime();
    if (!st.active)
        activate(cg, st);
    st.lastIo = now;
    st.lastEnd = offset + static_cast<uint64_t>(size);

    // The charge tail of chargeAndDispatch, inline: a fused bio is
    // charged at its submit instant, so the statWait/periodWait
    // increments (now - submitTime) are exactly zero and elided.
    const auto charge = [&](double hw) {
        st.vtime += abs_cost / hw;
        st.absUsage += abs_cost;
        st.statUsage += abs_cost;
        fusedDispatchTick(st);
    };

    if (swap_io || meta_io || wb_io) {
        switch (config_.debtMode) {
          case DebtMode::Production:
            if (st.absDebt == 0.0)
                st.debtSince = now;
            st.absDebt += abs_cost;
            st.absUsage += abs_cost;
            st.statUsage += abs_cost;
            fusedDispatchTick(st);
            return FusedVerdict::Dispatched;
          case DebtMode::RootCharge:
            fusedDispatchTick(st);
            return FusedVerdict::Dispatched;
          case DebtMode::Inversion:
            break; // fall through to normal throttling
        }
    }

    double hw = tree_->hweightInuse(cg);
    if (hw <= kEps) {
        fusedDispatchTick(st);
        return FusedVerdict::Dispatched;
    }

    const double floor = gvtime_ - budgetCap();
    if (st.vtime < floor)
        st.vtime = floor;

    payDebt(cg, st);

    const double rel = abs_cost / hw;
    if (st.waiting.empty() && st.absDebt <= 0.0 &&
        gvtime_ - st.vtime >= rel) {
        charge(hw);
        return FusedVerdict::Dispatched;
    }

    if (std::abs(tree_->inuse(cg) -
                 static_cast<double>(tree_->weight(cg))) > kEps) {
        tree_->setInuse(cg, tree_->weight(cg));
        hw = tree_->hweightInuse(cg);
        const double rel2 = abs_cost / hw;
        if (st.waiting.empty() && st.absDebt <= 0.0 &&
            gvtime_ - st.vtime >= rel2) {
            charge(hw);
            return FusedVerdict::Dispatched;
        }
    }

    return FusedVerdict::Queued;
}

void
IoCost::fusedQueue(cgroup::CgroupId cg, blk::BioPtr bio)
{
    Iocg &st = iocg(cg);
    st.hadWait = true;
    st.waiting.push_back(std::move(bio));
    if (!st.kick.pending())
        kickWaiters(cg);
}

void
IoCost::fusedComplete(cgroup::CgroupId cg, blk::Op op,
                      sim::Time device_latency)
{
    if (op == blk::Op::Read)
        periodReadLat_.record(device_latency);
    else
        periodWriteLat_.record(device_latency);

    Iocg &st = iocg(cg);
    if (st.outstanding > 0 && --st.outstanding == 0)
        st.busyAccum += sim_->now() - st.busySince;
}

bool
IoCost::fusedQuiescent() const
{
    for (const Iocg &st : iocgs_) {
        if (!st.waiting.empty() || st.kick.pending())
            return false;
    }
    return true;
}

void
IoCost::kickWaiters(cgroup::CgroupId cg)
{
    Iocg &st = iocg(cg);
    st.kick.cancel();
    if (st.waiting.empty())
        return;

    updateGvtime();
    const double hw = tree_->hweightInuse(cg);
    if (hw <= kEps) {
        // Weight tree says we have no share (e.g. racing a config
        // change); retry a period later.
        st.kick = sim_->after(period(), [this, cg] {
            kickWaiters(cg);
        });
        return;
    }

    payDebt(cg, st);

    double needed_rel = 0.0;
    while (!st.waiting.empty()) {
        const double abs_cost = st.waiting.front()->controllerScratch;
        if (st.absDebt > 0.0) {
            // payDebt drained the budget and debt remains: nothing
            // dispatches until the debt plus this IO would fit.
            needed_rel = (abs_cost + st.absDebt) / hw -
                         (gvtime_ - st.vtime);
            break;
        }
        const double rel = abs_cost / hw;
        if (gvtime_ - st.vtime >= rel) {
            blk::BioPtr bio = std::move(st.waiting.front());
            st.waiting.pop_front();
            chargeAndDispatch(std::move(bio), st, abs_cost, hw);
        } else {
            needed_rel = rel - (gvtime_ - st.vtime);
            break;
        }
    }

    if (!st.waiting.empty()) {
        // Budget accrues at vrate gvtime-units per wall ns.
        const double wall =
            needed_rel / std::max(vrate_, config_.qos.vrateMin);
        const sim::Time delay = std::max<sim::Time>(
            1 * sim::kUsec, static_cast<sim::Time>(wall));
        st.kick = sim_->after(delay, [this, cg] {
            kickWaiters(cg);
        });
    }
}

void
IoCost::onComplete(const blk::Bio &bio,
                   const blk::CompletionInfo &info)
{
    // Failed bios carry no valid service latency; feeding them into
    // the QoS percentiles would double-punish vrate (the error burst
    // already reads as saturation via onError).
    if (info.status == blk::BioStatus::Ok) {
        if (bio.op == blk::Op::Read)
            periodReadLat_.record(info.deviceLatency);
        else
            periodWriteLat_.record(info.deviceLatency);
    }

    Iocg &st = iocg(bio.cgroup);
    if (st.outstanding > 0 && --st.outstanding == 0)
        st.busyAccum += sim_->now() - st.busySince;
}

void
IoCost::onError(const blk::Bio &bio, const blk::CompletionInfo &info)
{
    (void)bio;
    (void)info;
    ++periodErrors_;
}

sim::Time
IoCost::userspaceDelay(cgroup::CgroupId cg)
{
    const Iocg *st = iocgIfPresent(cg);
    if (!st || st->absDebt <= static_cast<double>(
                                  config_.qos.debtThreshold)) {
        return 0;
    }
    const double hw = std::max(tree_->hweightInuse(cg), 1e-6);
    const double wall = (st->absDebt / hw) / std::max(vrate_, 0.01);
    const sim::Time delay = std::min<sim::Time>(
        config_.qos.maxUserspaceDelay, static_cast<sim::Time>(wall));
    iocg(cg).statIndelay += delay;
    return delay;
}

void
IoCost::adjustVrate(sim::Time elapsed)
{
    (void)elapsed;
    const QosParams &qos = config_.qos;

    // Saturation signal 1: completion-latency target violations.
    // On slow media a single period may not contain enough
    // completions for a stable percentile; histograms then carry
    // over and are only consumed (reset) once populated.
    constexpr uint64_t kMinSamples = 16;
    double worst_ratio = 0.0;
    bool read_ready = periodReadLat_.count() >= kMinSamples;
    bool write_ready = periodWriteLat_.count() >= kMinSamples;
    if (read_ready) {
        const double p = static_cast<double>(
            periodReadLat_.quantile(qos.readLatQuantile));
        worst_ratio = std::max(
            worst_ratio,
            p / static_cast<double>(qos.readLatTarget));
    }
    if (write_ready) {
        const double p = static_cast<double>(
            periodWriteLat_.quantile(qos.writeLatQuantile));
        worst_ratio = std::max(
            worst_ratio,
            p / static_cast<double>(qos.writeLatTarget));
    }
    latReadReady_ = read_ready;
    latWriteReady_ = write_ready;

    // Saturation signal 2: request depletion at the device. An
    // error burst counts too — a device dropping requests is not
    // delivering its modeled capacity, and each failure re-occupies
    // a slot on retry. The threshold keeps a stray transient error
    // from backing off vrate (retries multiply the raw count).
    const bool depleted =
        layer().readAndResetQueueFullEvents() > 0 ||
        layer().dispatchQueueDepth() > 0 ||
        periodErrors_ >= kErrorBurstThreshold;

    // Budget deficiency: someone was throttled this period.
    bool had_wait = false;
    for (const Iocg &st : iocgs_) {
        if (st.hadWait || !st.waiting.empty()) {
            had_wait = true;
            break;
        }
    }

    if (worst_ratio > 1.0) {
        // Latency violation: back off proportionally to how far the
        // percentile overshoots the target, capped per period.
        const double factor =
            std::max(1.0 - qos.vrateStepDown, 1.0 / worst_ratio);
        vrate_ *= factor;
    } else if (depleted) {
        vrate_ *= 1.0 - qos.vrateStepDown * 0.5;
    } else if (had_wait) {
        vrate_ *= 1.0 + qos.vrateStepUp;
    }
    vrate_ = std::clamp(vrate_, qos.vrateMin, qos.vrateMax);
}

void
IoCost::planDonation(double avg_vrate, sim::Time elapsed)
{
    // Donation denominates usage in shares of the total occupancy
    // granted over the period.
    const double granted =
        std::max(1.0, static_cast<double>(elapsed) * avg_vrate);

    std::vector<DonorTarget> &donors = donorScratch_;
    donors.clear();
    for (cgroup::CgroupId cg = 0; cg < iocgs_.size(); ++cg) {
        Iocg &st = iocgs_[cg];
        if (!st.active || !tree_->children(cg).empty())
            continue;
        if (st.hadWait || !st.waiting.empty())
            continue; // saturating its share; not a donor
        const double h = tree_->hweightActive(cg);
        if (h <= kEps)
            continue;
        // A cgroup with IO pending at the device for (nearly) the
        // whole period is busy (possibly device-starved), not idle —
        // shrinking it would spiral: lower share -> fewer
        // completions -> lower measured usage -> lower share. The
        // threshold sits at 80% so legitimately bursty donors (e.g.
        // think-time workloads ~50% busy) still donate.
        sim::Time busy = st.busyAccum;
        if (st.outstanding > 0)
            busy += sim_->now() - st.busySince;
        if (busy * 5 > elapsed * 4)
            continue;
        const double used_share = st.absUsage / granted;
        const double target = std::clamp(
            used_share * config_.qos.donationMargin,
            config_.qos.minShare, h);
        if (target < h * 0.95)
            donors.push_back(DonorTarget{cg, target});
    }
    // applyDonation resets all inuse weights first, so an empty donor
    // set also serves as the periodic "rescind everything" pass.
    applyDonation(*tree_, donors, donationScratch_);
}

void
IoCost::runPlanning()
{
    const sim::Time now = sim_->now();
    updateGvtime();
    const sim::Time elapsed = std::max<sim::Time>(
        1, now - lastPlanning_);
    const double avg_vrate =
        (gvtime_ - gvtimeAtPlanning_) / static_cast<double>(elapsed);

    // Deactivate cgroups that were idle for a full period (§3.1.1);
    // their share implicitly flows to the remaining active groups.
    for (cgroup::CgroupId cg = 0; cg < iocgs_.size(); ++cg) {
        Iocg &st = iocgs_[cg];
        if (st.active && st.waiting.empty() &&
            now - st.lastIo > period()) {
            st.active = false;
            tree_->setActive(cg, false);
        }
    }

    adjustVrate(elapsed);

    if (config_.donationEnabled)
        planDonation(avg_vrate, elapsed);

    vrateSeries_.record(now, vrate_ * 100.0);

    emitPeriodTelemetry(now, elapsed, avg_vrate);

    // Reset period-local accounting and wake throttled cgroups under
    // the new weights and vrate. Latency histograms that were still
    // accumulating toward a stable percentile carry over.
    if (latReadReady_)
        periodReadLat_.reset(now);
    if (latWriteReady_)
        periodWriteLat_.reset(now);
    for (cgroup::CgroupId cg = 0; cg < iocgs_.size(); ++cg) {
        Iocg &st = iocgs_[cg];
        st.absUsage = 0.0;
        st.hadWait = false;
        st.busyAccum = 0;
        st.busySince = now;
        st.periodWait = 0;
        if (!st.waiting.empty())
            kickWaiters(cg);
    }

    periodErrors_ = 0;
    lastPlanning_ = now;
    gvtimeAtPlanning_ = gvtime_;
}

void
IoCost::emitPeriodTelemetry(sim::Time now, sim::Time elapsed,
                            double avg_vrate)
{
    stat::Telemetry &tel = layer().telemetry();
    if (!tel.enabled())
        return;

    // Machine-wide signals: the vrate the planner just settled on
    // and the QoS completion-latency windows it judged it by.
    tel.emit(now, "iocost", stat::kNoCgroup, "vrate_pct",
             vrate_ * 100.0);
    tel.emitSnapshot(now, "iocost", stat::kNoCgroup, "lat_read",
                     periodReadLat_.snapshot(now));
    tel.emitSnapshot(now, "iocost", stat::kNoCgroup, "lat_write",
                     periodWriteLat_.snapshot(now));
    if (periodErrors_ > 0) {
        tel.emit(now, "iocost", stat::kNoCgroup, "error_count",
                 static_cast<double>(periodErrors_));
    }

    // Per-cgroup period records for every active iocg, in the shape
    // the kernel's iocost_monitor prints: share of the occupancy
    // granted this period, waitq time, outstanding debt, and the
    // donation-adjusted hierarchical weight.
    const double granted = std::max(
        1.0, static_cast<double>(elapsed) * avg_vrate);
    for (cgroup::CgroupId cg = 0; cg < iocgs_.size(); ++cg) {
        const Iocg &st = iocgs_[cg];
        if (!st.active)
            continue;
        tel.emit(now, "iocost", cg, "usage_pct",
                 100.0 * st.absUsage / granted);
        tel.emit(now, "iocost", cg, "wait_us",
                 sim::toMicros(st.periodWait));
        tel.emit(now, "iocost", cg, "debt_us", st.absDebt / 1e3);
        tel.emit(now, "iocost", cg, "hweight_inuse_pct",
                 100.0 * tree_->hweightInuse(cg));
        tel.emit(now, "iocost", cg, "hweight_active_pct",
                 100.0 * tree_->hweightActive(cg));
    }
}

void
IoCost::saveState(sim::StateWriter &w) const
{
    w.put(config_.model);
    w.put(config_.qos);

    w.put(gvtime_);
    w.put(vrate_);
    w.put(lastGvtimeUpdate_);
    w.put(lastPlanning_);
    w.put(gvtimeAtPlanning_);
    w.put(periodErrors_);
    w.put(latReadReady_);
    w.put(latWriteReady_);
    periodReadLat_.saveState(w);
    periodWriteLat_.saveState(w);
    vrateSeries_.saveState(w);

    w.put(static_cast<uint32_t>(iocgs_.size()));
    for (const Iocg &st : iocgs_) {
        w.put(st.vtime);
        w.put(st.absDebt);
        w.put(st.absUsage);
        w.put(st.lastIo);
        w.put(st.active);
        w.put(st.hadWait);
        w.put(st.lastEnd);
        w.put(st.outstanding);
        w.put(st.busySince);
        w.put(st.busyAccum);
        w.put(st.periodWait);
        w.put(st.statUsage);
        w.put(st.statWait);
        w.put(st.statIndebt);
        w.put(st.statIndelay);
        w.put(st.debtSince);
        w.put(static_cast<uint64_t>(st.waiting.size()));
        for (size_t i = 0; i < st.waiting.size(); ++i)
            blk::saveBio(w, *st.waiting.at(i));
        sim_->events().saveHandle(w, st.kick);
    }

    w.put(planningTimer_.has_value());
    if (planningTimer_)
        planningTimer_->saveState(w);
}

void
IoCost::loadState(sim::StateReader &r)
{
    r.get(config_.model);
    r.get(config_.qos);

    r.get(gvtime_);
    r.get(vrate_);
    r.get(lastGvtimeUpdate_);
    r.get(lastPlanning_);
    r.get(gvtimeAtPlanning_);
    r.get(periodErrors_);
    r.get(latReadReady_);
    r.get(latWriteReady_);
    periodReadLat_.loadState(r);
    periodWriteLat_.loadState(r);
    vrateSeries_.loadState(r);

    // Size the table to the snapshot: a branch may have grown it
    // (iocg() adds entries on first submission from a new cgroup
    // id) — those entries and their queued bios are destroyed —
    // and a freshly built replica starts empty.
    const auto n = r.get<uint32_t>();
    iocgs_.resize(n);
    for (Iocg &st : iocgs_) {
        r.get(st.vtime);
        r.get(st.absDebt);
        r.get(st.absUsage);
        r.get(st.lastIo);
        r.get(st.active);
        r.get(st.hadWait);
        r.get(st.lastEnd);
        r.get(st.outstanding);
        r.get(st.busySince);
        r.get(st.busyAccum);
        r.get(st.periodWait);
        r.get(st.statUsage);
        r.get(st.statWait);
        r.get(st.statIndebt);
        r.get(st.statIndelay);
        r.get(st.debtSince);
        const auto waiting = r.get<uint64_t>();
        while (!st.waiting.empty())
            st.waiting.pop_front();
        for (uint64_t i = 0; i < waiting; ++i)
            st.waiting.push_back(blk::loadBio(r));
        st.kick = sim_->events().loadHandle(r);
    }

    if (r.get<bool>()) {
        sim::panicIf(!planningTimer_.has_value(),
                     "IoCost::loadState: planning timer mismatch");
        planningTimer_->loadState(r);
    }
}

} // namespace iocost::core
