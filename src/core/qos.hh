/**
 * @file
 * IOCost QoS parameters (paper §3.3-§3.4).
 *
 * QoS parameters regulate *device-level* behaviour: the completion-
 * latency targets that define saturation, and the bounds within which
 * the dynamic vrate adjustment may move. They are tuned per device
 * model (by profile::QosTuner, reproducing the ResourceControlBench
 * procedure) and deployed fleet-wide; workloads themselves are
 * configured only with weights.
 */

#ifndef IOCOST_CORE_QOS_HH
#define IOCOST_CORE_QOS_HH

#include "sim/time.hh"

namespace iocost::core {

/**
 * Per-device QoS configuration, mirroring the kernel's io.cost.qos
 * knobs (rpct/rlat/wpct/wlat/min/max) plus the planning-path tunables
 * the kernel hard-codes.
 */
struct QosParams
{
    /** Read completion-latency quantile watched for saturation. */
    double readLatQuantile = 0.90;
    /** Read latency above which the device counts as saturated. */
    sim::Time readLatTarget = 5 * sim::kMsec;

    /** Write completion-latency quantile watched for saturation. */
    double writeLatQuantile = 0.90;
    /** Write latency above which the device counts as saturated. */
    sim::Time writeLatTarget = 5 * sim::kMsec;

    /** Lower bound on vrate (1.0 = 100%: model-specified rate). */
    double vrateMin = 0.25;
    /** Upper bound on vrate. */
    double vrateMax = 4.00;

    /**
     * Planning period. Zero derives it from the latency targets
     * ("a multiple of the latency targets", §3.1.2).
     */
    sim::Time period = 0;

    /**
     * Budget a cgroup may hoard, in periods of its fair share.
     * Bounds how far a local vtime may lag the global vtime.
     */
    double budgetCapPeriods = 1.5;

    /**
     * Headroom multiplier applied to measured usage when computing
     * donation targets, so donors keep room to grow before needing
     * to rescind.
     */
    double donationMargin = 1.25;

    /** A donor never shrinks below this hweight share. */
    double minShare = 1.0 / 65536.0;

    /**
     * Absolute (device-occupancy) debt beyond which a cgroup's
     * threads are delayed at return-to-userspace (§3.5).
     */
    sim::Time debtThreshold = 10 * sim::kMsec;

    /** Cap on one return-to-userspace delay. */
    sim::Time maxUserspaceDelay = 100 * sim::kMsec;

    /** Multiplicative vrate step when raising (budget deficient). */
    double vrateStepUp = 0.05;

    /** Max multiplicative vrate step when lowering (saturated). */
    double vrateStepDown = 0.125;

    /** Effective planning period after derivation. */
    sim::Time
    effectivePeriod() const
    {
        if (period > 0)
            return period;
        const sim::Time t =
            readLatTarget > writeLatTarget ? readLatTarget
                                           : writeLatTarget;
        // A small multiple of the latency target, clamped to stay
        // responsive on very fast and very slow devices alike.
        sim::Time p = 2 * t;
        if (p < 5 * sim::kMsec)
            p = 5 * sim::kMsec;
        if (p > 100 * sim::kMsec)
            p = 100 * sim::kMsec;
        return p;
    }
};

} // namespace iocost::core

#endif // IOCOST_CORE_QOS_HH
