#include "core/cost_model.hh"

#include "sim/logging.hh"

namespace iocost::core {

namespace {

/** Eq. 2: per-byte cost in ns from a bytes/sec peak. */
double
sizeCostRate(double bps)
{
    sim::panicIf(bps <= 0, "cost model: non-positive bps");
    return 1e9 / bps;
}

/** Eq. 3: base cost in ns from a 4k IOPS peak and a per-byte rate. */
double
baseCost(double iops_4k, double rate_ns_per_byte)
{
    sim::panicIf(iops_4k <= 0, "cost model: non-positive iops");
    const double per_io = 1e9 / iops_4k;
    const double base = per_io - rate_ns_per_byte * 4096.0;
    // A device whose 4k IOPS is entirely transfer-bound has no fixed
    // overhead; clamp at zero rather than going negative.
    return base > 0.0 ? base : 0.0;
}

} // namespace

CostModel
CostModel::fromConfig(const LinearModelConfig &cfg)
{
    CostModel m;
    m.readNsPerByte_ = sizeCostRate(cfg.rbps);
    m.writeNsPerByte_ = sizeCostRate(cfg.wbps);
    m.readBaseSeq_ = baseCost(cfg.rseqiops, m.readNsPerByte_);
    m.readBaseRand_ = baseCost(cfg.rrandiops, m.readNsPerByte_);
    m.writeBaseSeq_ = baseCost(cfg.wseqiops, m.writeNsPerByte_);
    m.writeBaseRand_ = baseCost(cfg.wrandiops, m.writeNsPerByte_);
    return m;
}

void
CostModel::scaleCapability(double factor)
{
    sim::panicIf(factor <= 0, "cost model: non-positive scale");
    // Claiming a device k-times as capable makes every IO cost 1/k
    // as much occupancy.
    readBaseSeq_ /= factor;
    readBaseRand_ /= factor;
    writeBaseSeq_ /= factor;
    writeBaseRand_ /= factor;
    readNsPerByte_ /= factor;
    writeNsPerByte_ /= factor;
}

} // namespace iocost::core
