#include "core/donation.hh"

#include <algorithm>
#include <cmath>

namespace iocost::core {

namespace {

constexpr double kEps = 1e-12;

} // namespace

size_t
applyDonation(cgroup::CgroupTree &tree,
              const std::vector<DonorTarget> &donors,
              DonationScratch &scratch)
{
    using cgroup::CgroupId;
    using cgroup::kRoot;

    const size_t n = tree.size();

    // Start each period from the configured weights: donation is
    // recomputed from scratch every planning pass, never compounded.
    for (CgroupId id = 0; id < n; ++id)
        tree.setInuse(id, tree.weight(id));

    // Accumulate d (donated hweight before) and d' (after) bottom-up.
    // assign() re-fills without shrinking capacity, so a stable tree
    // size means no allocation after the first pass.
    std::vector<double> &d = scratch.d;
    std::vector<double> &dp = scratch.dp;
    d.assign(n, 0.0);
    dp.assign(n, 0.0);
    size_t applied = 0;
    for (const DonorTarget &don : donors) {
        const CgroupId leaf = don.leaf;
        if (!tree.subtreeActive(leaf))
            continue;
        const double h = tree.hweightActive(leaf);
        const double target =
            std::max(don.targetHweight, kEps);
        if (target >= h - kEps)
            continue;
        ++applied;
        for (CgroupId cur = leaf;; cur = tree.parent(cur)) {
            d[cur] += h;
            dp[cur] += target;
            if (cur == kRoot)
                break;
        }
    }
    if (applied == 0)
        return 0;

    // Walk donor paths top-down computing h' and the lowered w'.
    // hprime[] is only meaningful for nodes on donor paths plus the
    // root.
    std::vector<double> &hprime = scratch.hprime;
    hprime.assign(n, 0.0);
    hprime[kRoot] = 1.0;

    // Iterative preorder over donor-path nodes.
    std::vector<CgroupId> &stack = scratch.stack;
    stack.clear();
    stack.push_back(kRoot);
    while (!stack.empty()) {
        const CgroupId node = stack.back();
        stack.pop_back();

        const double hp = tree.hweightActive(node);
        const double hp_new = hprime[node];
        const double d_p = d[node];
        const double dp_p = dp[node];

        // Sibling weight sum among active children (s in the paper).
        double s = 0.0;
        for (CgroupId child : tree.children(node)) {
            if (tree.subtreeActive(child))
                s += static_cast<double>(tree.weight(child));
        }

        // New sibling weight sum (invariant 5). When the parent's
        // entire hweight is donated the denominator vanishes and the
        // old sum carries over (every child is recomputed anyway).
        double s_new = s;
        if (hp_new - dp_p > kEps && hp > kEps) {
            s_new = s * ((hp - d_p) / hp) *
                    (hp_new / (hp_new - dp_p));
        }

        for (CgroupId child : tree.children(node)) {
            if (d[child] <= kEps || !tree.subtreeActive(child))
                continue;
            const double h = tree.hweightActive(child);
            double h_new;
            if (hp - d_p > kEps) {
                h_new = (h - d[child]) / (hp - d_p) *
                            (hp_new - dp_p) +
                        dp[child];
            } else {
                // Fully donating subtree: h' collapses to d'.
                h_new = dp[child];
            }
            hprime[child] = h_new;

            const double w_new =
                hp_new > kEps ? s_new * h_new / hp_new : kEps;
            tree.setInuse(child, w_new);

            if (!tree.children(child).empty())
                stack.push_back(child);
        }
    }
    return applied;
}

size_t
applyDonation(cgroup::CgroupTree &tree,
              const std::vector<DonorTarget> &donors)
{
    DonationScratch scratch;
    return applyDonation(tree, donors, scratch);
}

} // namespace iocost::core
