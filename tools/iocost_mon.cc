/**
 * @file
 * iocost_mon — period-level observability console.
 *
 * The simulation analogue of the kernel's iocost_monitor drgn
 * script: it replays a scenario with a telemetry sink installed and
 * renders what the controller did each planning period — vrate,
 * per-cgroup usage, wait, debt, and hierarchical weights — instead
 * of only end-of-run aggregates.
 *
 * Single-host mode mirrors iocost_sim's flags:
 *   iocost_mon [--device oldgen|newgen|enterprise|hdd|gp3|io2|
 *               pd-balanced|pd-ssd]
 *              [--controller "<spec>"] [--model "..."] [--qos "..."]
 *              [--faults "<spec>"]  deterministic device fault plan
 *                              (see sim::FaultPlan::parse)
 *              [--seconds N] [--seed N] [--job name:key=value:...]
 *              [--pagecache SIZE] [--dirty-ratio PCT]
 *                              page cache for buffered=1 jobs
 *                              (same keys as iocost_sim); the
 *                              flusher's "wb" telemetry shows up
 *                              as a [wb] row under each period
 *              [--every N]     render every Nth period (default:
 *                              auto, ~32 rows)
 *              [--detail]      per-completion device/blk records
 *              [--out FILE]    also dump every record as JSONL
 *
 * Host sweep mode runs every ';'-separated controller spec as a
 * shadow lane over one shared workload/device stream (host::runSweep
 * CRN semantics) and renders the fused fast-path occupancy per
 * planning boundary — the row where a sweep visibly falls off the
 * fused path — plus the end-of-run per-config comparison:
 *   iocost_mon --sweep "iocost min=100;iocost min=25;iolatency"
 *              [--device ...] [--faults ...] [--seconds N]
 *              [--seed N] [--job ...] [--every N] [--out FILE]
 *
 * Fleet mode replays the §4.8 migration studies with telemetry on,
 * writing one JSONL record per telemetry sample prefixed with the
 * (day, host) slice coordinates. Output is byte-identical for any
 * --jobs/--shards value (records are serialized in (day, host,
 * time) order):
 *   iocost_mon --fleet --scenario fig18|fig19
 *              [--hosts N] [--days N] [--jobs N] [--shards N]
 *              [--out FILE]
 *
 * A full FleetScenario spec (fleet/fleet_scenario.hh grammar,
 * inline or @file) runs the sharded streaming engine instead and
 * renders the constant-memory aggregate (per-host telemetry is not
 * retained at that scale); --out then writes the aggregate JSON:
 *   iocost_mon --fleet --scenario "hosts=10000 days=24 ..."
 *   iocost_mon --fleet --scenario @scenario.txt --jobs 8
 *
 * Reader mode renders a previously written file — the
 * streaming-aggregate JSON, a multi-config sweep document
 * (iocost_sim --fleet --sweep --out), a what-if diff stream
 * (iocost_whatif output), or the legacy per-host JSONL (sniffed
 * automatically; an unrecognized document type is a clean error):
 *   iocost_mon --in fleet.json|fleet.jsonl|whatif.jsonl
 *
 * A scenario with a `sweep=` key (or equivalently iocost_sim's
 * --sweep flag) runs every controller config against paired
 * host-day seeds and renders one aggregate per config.
 *
 * Examples:
 *   iocost_mon --device newgen --seconds 5 \
 *     --job web:weight=200:depth=32 --job batch:weight=100:depth=32
 *   iocost_mon --fleet --scenario fig18 --jobs 8 --out fig18.jsonl
 *   iocost_mon --fleet --in fig18.jsonl
 */

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <map>
#include <memory>
#include <set>
#include <stdexcept>
#include <string>
#include <vector>

#include "core/config_parse.hh"
#include "device/device_profiles.hh"
#include "device/hdd_model.hh"
#include "device/remote_model.hh"
#include "device/ssd_model.hh"
#include "fleet/fleet_sim.hh"
#include "host/config.hh"
#include "host/host.hh"
#include "host/sweep.hh"
#include "profile/device_profiler.hh"
#include "sim/logging.hh"
#include "stat/telemetry.hh"
#include "workload/buffered_io.hh"
#include "workload/fio_workload.hh"

namespace {

using namespace iocost;

struct JobSpec
{
    std::string name = "job";
    uint32_t weight = 100;
    workload::FioConfig fio;
    /** Route through the page cache instead of the block layer. */
    bool buffered = false;
    uint32_t fsyncEvery = 0;
    uint64_t spanBytes = 0;
};

/** Parse "name:key=value:..." (same grammar as iocost_sim). */
JobSpec
parseJob(const std::string &arg)
{
    JobSpec job;
    size_t pos = 0;
    bool first = true;
    while (pos <= arg.size()) {
        const size_t colon = arg.find(':', pos);
        const std::string part =
            arg.substr(pos, colon == std::string::npos
                                ? std::string::npos
                                : colon - pos);
        if (first) {
            job.name = part;
            first = false;
        } else {
            const size_t eq = part.find('=');
            if (eq == std::string::npos)
                sim::fatal("bad job attribute: " + part);
            const std::string key = part.substr(0, eq);
            const std::string value = part.substr(eq + 1);
            if (key == "weight") {
                job.weight =
                    static_cast<uint32_t>(std::stoul(value));
            } else if (key == "depth") {
                job.fio.iodepth =
                    static_cast<unsigned>(std::stoul(value));
            } else if (key == "bs") {
                job.fio.blockSize =
                    static_cast<uint32_t>(std::stoul(value));
            } else if (key == "rw") {
                job.fio.readFraction = value == "read"    ? 1.0
                                       : value == "write" ? 0.0
                                                          : 0.5;
            } else if (key == "pattern") {
                job.fio.randomFraction =
                    value == "seq" ? 0.0 : 1.0;
            } else if (key == "rate") {
                job.fio.arrival = workload::Arrival::Rate;
                job.fio.ratePerSec = std::stod(value);
            } else if (key == "buffered") {
                job.buffered = std::stoul(value) != 0;
            } else if (key == "fsync") {
                job.fsyncEvery =
                    static_cast<uint32_t>(std::stoul(value));
            } else if (key == "span") {
                job.spanBytes = std::stoull(value);
            } else {
                sim::fatal("unknown job key: " + key);
            }
        }
        if (colon == std::string::npos)
            break;
        pos = colon + 1;
    }
    return job;
}

std::unique_ptr<blk::BlockDevice>
makeDevice(const std::string &name, sim::Simulator &sim,
           core::LinearModelConfig &model_out)
{
    auto ssd = [&](const device::SsdSpec &spec) {
        model_out =
            profile::DeviceProfiler::profileSsd(spec).model;
        return std::make_unique<device::SsdModel>(sim, spec);
    };
    if (name == "oldgen")
        return ssd(device::oldGenSsd());
    if (name == "newgen")
        return ssd(device::newGenSsd());
    if (name == "enterprise")
        return ssd(device::enterpriseSsd());
    if (name == "hdd") {
        model_out = profile::DeviceProfiler::profileHdd(
                        device::nearlineHdd())
                        .model;
        return std::make_unique<device::HddModel>(
            sim, device::nearlineHdd());
    }
    const device::RemoteSpec *remote = nullptr;
    static const device::RemoteSpec gp3 = device::awsGp3();
    static const device::RemoteSpec io2 = device::awsIo2();
    static const device::RemoteSpec pdb = device::gcpBalanced();
    static const device::RemoteSpec pds = device::gcpSsd();
    if (name == "gp3")
        remote = &gp3;
    else if (name == "io2")
        remote = &io2;
    else if (name == "pd-balanced")
        remote = &pdb;
    else if (name == "pd-ssd")
        remote = &pds;
    if (remote) {
        model_out =
            profile::DeviceProfiler::profileRemote(*remote).model;
        return std::make_unique<device::RemoteModel>(sim, *remote);
    }
    sim::fatal("unknown device: " + name);
}

/** One planning period reassembled from the record stream. */
struct Period
{
    sim::Time time = 0;
    double vratePct = 0.0;
    // key ("lat_read_p50" etc.) -> value for host-wide records.
    std::map<std::string, double> global;
    // cgroup -> key -> value.
    std::map<uint32_t, std::map<std::string, double>> cgroups;
    // Non-iocost sources ("wb", future subsystems): source -> key
    // -> latest value within the period, rendered as a catch-all
    // row so new telemetry is never silently dropped.
    std::map<std::string, std::map<std::string, double>> other;
};

/**
 * Warn once per telemetry source this tool has no native rendering
 * for; the values still land in the period's catch-all row.
 */
void
warnUnknownSource(const std::string &source, const std::string &key)
{
    static std::set<std::string> warned;
    if (warned.insert(source).second) {
        std::fprintf(stderr,
                     "iocost_mon: unrecognized telemetry source "
                     "'%s' (first key '%s'); values shown in the "
                     "catch-all row\n",
                     source.c_str(), key.c_str());
    }
}

/** Group the iocost-source records into planning periods. */
std::vector<Period>
collectPeriods(const std::vector<stat::Record> &records)
{
    std::vector<Period> periods;
    for (const stat::Record &r : records) {
        if (r.source != "iocost") {
            // Known sources with dedicated renderings elsewhere
            // ("device"/"blk" under --detail) stay out of the
            // period view; anything else folds into the catch-all
            // row of the current period.
            if (r.source == "device" || r.source == "blk")
                continue;
            if (r.source != "wb")
                warnUnknownSource(r.source, r.key);
            if (!periods.empty())
                periods.back().other[r.source][r.key] = r.value;
            continue;
        }
        if (r.key == "vrate_pct") {
            periods.emplace_back();
            periods.back().time = r.time;
            periods.back().vratePct = r.value;
            continue;
        }
        if (periods.empty())
            continue; // records before the first period marker
        if (r.cgroup == stat::kNoCgroup)
            periods.back().global[r.key] = r.value;
        else
            periods.back().cgroups[r.cgroup][r.key] = r.value;
    }
    return periods;
}

double
field(const std::map<std::string, double> &m,
      const std::string &key)
{
    const auto it = m.find(key);
    return it == m.end() ? 0.0 : it->second;
}

void
printPeriods(const std::vector<Period> &periods,
             cgroup::CgroupTree &tree, unsigned every)
{
    if (every == 0) {
        every = static_cast<unsigned>(
            std::max<size_t>(1, periods.size() / 32));
    }
    for (size_t i = 0; i < periods.size(); i += every) {
        const Period &p = periods[i];
        // Histogram-backed snapshots record nanoseconds.
        std::printf(
            "[%8.3fs] vrate=%6.1f%%  rlat p50/p99=%5.0f/%5.0fus"
            "  wlat p50/p99=%5.0f/%5.0fus",
            sim::toSeconds(p.time), p.vratePct,
            field(p.global, "lat_read_p50") / 1e3,
            field(p.global, "lat_read_p99") / 1e3,
            field(p.global, "lat_write_p50") / 1e3,
            field(p.global, "lat_write_p99") / 1e3);
        if (const double errs = field(p.global, "error_count"))
            std::printf("  errs=%.0f", errs);
        std::printf("\n");
        std::printf("  %-28s %7s %8s %8s %9s %9s\n", "cgroup",
                    "usage%", "wait_ms", "debt_ms", "hw_inuse%",
                    "hw_active%");
        for (const auto &[cg, vals] : p.cgroups) {
            std::printf(
                "  %-28s %7.1f %8.2f %8.2f %9.1f %9.1f\n",
                tree.path(cg).c_str(), field(vals, "usage_pct"),
                field(vals, "wait_us") / 1e3,
                field(vals, "debt_us") / 1e3,
                field(vals, "hweight_inuse_pct"),
                field(vals, "hweight_active_pct"));
        }
        for (const auto &[src, vals] : p.other) {
            std::printf("  [%s]", src.c_str());
            for (const auto &[k, v] : vals)
                std::printf(" %s=%.6g", k.c_str(), v);
            std::printf("\n");
        }
    }
}

int
runSingleHost(const std::string &device_name,
              const std::string &controller,
              const std::string &model_line,
              const std::string &qos_line,
              const std::string &faults_spec, double seconds,
              uint64_t seed, std::vector<JobSpec> jobs,
              uint64_t pagecache_bytes, double dirty_ratio_pct,
              unsigned every, bool detail,
              const std::string &out_path)
{
    sim::Simulator sim(seed);
    core::LinearModelConfig model;
    auto device = makeDevice(device_name, sim, model);

    if (!model_line.empty()) {
        const auto parsed = core::parseModelLine(model_line);
        if (!parsed)
            sim::fatal("bad --model line");
        model = *parsed;
    }

    const auto spec = controllers::parseControllerSpec(controller);
    if (!spec)
        sim::fatal("bad --controller spec: " + controller);

    stat::RingSink ring;

    host::HostOptions opts;
    opts.controller = *spec;
    opts.controller.iocost.model =
        core::CostModel::fromConfig(model);
    opts.controller.iocost.qos.vrateMin = 0.5;
    opts.controller.iocost.qos.vrateMax = 1.0;
    if (!qos_line.empty()) {
        const auto parsed = core::parseQosLine(qos_line);
        if (!parsed)
            sim::fatal("bad --qos line");
        opts.controller.iocost.qos = *parsed;
    }
    opts.telemetrySink = &ring;
    opts.telemetryDetail = detail;
    opts.faults = faults_spec;

    // Buffered jobs need a page cache; default one in when the
    // size was left implicit (same policy as iocost_sim).
    bool any_buffered = false;
    for (const JobSpec &job : jobs)
        any_buffered = any_buffered || job.buffered;
    if (any_buffered && pagecache_bytes == 0)
        pagecache_bytes = 512ull << 20;
    if (pagecache_bytes != 0) {
        opts.enablePageCache = true;
        opts.pageCacheConfig.cacheBytes = pagecache_bytes;
        if (dirty_ratio_pct > 0.0) {
            opts.pageCacheConfig.dirtyRatio =
                dirty_ratio_pct / 100.0;
            opts.pageCacheConfig.dirtyBackgroundRatio =
                dirty_ratio_pct / 200.0;
        }
    }

    host::Host host(sim, std::move(device), opts);

    if (jobs.empty()) {
        jobs.push_back(parseJob("web:weight=200:depth=32"));
        jobs.push_back(parseJob("batch:weight=100:depth=32"));
    }

    std::printf("device=%s controller=%s seconds=%.1f seed=%llu\n",
                device_name.c_str(), spec->name.c_str(), seconds,
                static_cast<unsigned long long>(seed));

    std::vector<std::unique_ptr<workload::FioWorkload>> running;
    std::vector<std::unique_ptr<workload::BufferedWorkload>>
        buffered;
    for (size_t j = 0; j < jobs.size(); ++j) {
        JobSpec &js = jobs[j];
        const auto cg = host.addWorkload(js.name, js.weight);
        js.fio.offsetBase = j << 40;
        if (js.buffered) {
            workload::BufferedConfig bc;
            bc.name = js.name;
            bc.readFraction = js.fio.readFraction;
            bc.randomFraction = js.fio.randomFraction;
            bc.blockSize = js.fio.blockSize;
            bc.offsetBase = js.fio.offsetBase;
            bc.fsyncEvery = js.fsyncEvery;
            bc.depth = js.fio.iodepth;
            if (js.spanBytes != 0)
                bc.spanBytes = js.spanBytes;
            buffered.push_back(
                std::make_unique<workload::BufferedWorkload>(
                    sim, host.pageCache(), cg, bc));
            buffered.back()->start();
        } else {
            running.push_back(
                std::make_unique<workload::FioWorkload>(
                    sim, host.layer(), cg, js.fio));
            running.back()->start();
        }
    }
    sim.runUntil(static_cast<sim::Time>(seconds * sim::kSec));

    const auto &records = ring.records();
    const auto periods = collectPeriods(
        std::vector<stat::Record>(records.begin(), records.end()));
    if (periods.empty()) {
        // Non-iocost controllers have no planning periods; show
        // what the stream contains instead.
        std::map<std::string, uint64_t> by_source;
        for (const stat::Record &r : records)
            ++by_source[r.source + "/" + r.key];
        std::printf("%zu records, no iocost periods:\n",
                    records.size());
        for (const auto &[k, n] : by_source) {
            std::printf("  %-32s %8llu\n", k.c_str(),
                        static_cast<unsigned long long>(n));
        }
    } else {
        printPeriods(periods, host.tree(), every);
        std::printf("%zu planning periods, %zu records\n",
                    periods.size(), records.size());
    }

    if (!out_path.empty()) {
        stat::JsonlSink out(out_path);
        if (!out.ok())
            sim::fatal("cannot write " + out_path);
        for (const stat::Record &r : records)
            out.emit(r);
        out.flush();
        std::printf("wrote %zu records to %s\n", records.size(),
                    out_path.c_str());
    }
    return 0;
}

/**
 * Host sweep view: K shadow lanes over one shared stream. The main
 * rendering is the fused fast-path occupancy timeline — the per-
 * planning-boundary `sweep/fused_lanes` and `sweep/diverged_lanes`
 * telemetry the FusedObserver emits — as a row of '#' (fused) and
 * '.' (diverged) per lane, so a config that falls off the fast path
 * (hard throttle, debt, error bursts) is visible at the period it
 * forked and at the period it re-fused.
 */
int
runHostSweep(const std::string &device_name,
             const std::string &sweep_arg,
             const std::string &model_line,
             const std::string &faults_spec, double seconds,
             uint64_t seed, std::vector<JobSpec> jobs,
             unsigned every, const std::string &out_path)
{
    std::vector<std::string> specs;
    for (size_t pos = 0; pos <= sweep_arg.size();) {
        size_t semi = sweep_arg.find(';', pos);
        if (semi == std::string::npos)
            semi = sweep_arg.size();
        if (semi > pos)
            specs.push_back(sweep_arg.substr(pos, semi - pos));
        pos = semi + 1;
    }
    if (specs.empty())
        sim::fatal("--sweep needs at least one controller spec");

    // Profile the device's cost model up front: the runner applies
    // tweakSpec while parsing specs, before any device exists.
    core::LinearModelConfig model;
    {
        sim::Simulator probe(seed);
        (void)makeDevice(device_name, probe, model);
    }
    if (!model_line.empty()) {
        const auto parsed = core::parseModelLine(model_line);
        if (!parsed)
            sim::fatal("bad --model line");
        model = *parsed;
    }

    if (jobs.empty()) {
        jobs.push_back(parseJob("web:weight=200:depth=32"));
        jobs.push_back(parseJob("batch:weight=100:depth=32"));
    }

    stat::RingSink ring;
    host::SweepOptions opts;
    opts.specs = specs;
    opts.faults = faults_spec;
    opts.generatorSink = &ring;
    opts.makeDevice = [&device_name](sim::Simulator &sim) {
        core::LinearModelConfig scratch;
        return makeDevice(device_name, sim, scratch);
    };
    const core::CostModel cost = core::CostModel::fromConfig(model);
    opts.tweakSpec = [cost](const std::string &,
                            controllers::ControllerSpec &spec) {
        spec.iocost.model = cost;
    };

    std::printf("device=%s sweep K=%zu seconds=%.1f seed=%llu\n",
                device_name.c_str(), specs.size(), seconds,
                static_cast<unsigned long long>(seed));

    struct LaneRow
    {
        uint64_t reads = 0;
        uint64_t writes = 0;
        double p50Us = 0.0;
        double p99Us = 0.0;
    };
    double fraction = -1.0;
    const auto rows = host::runSweep(
        std::move(opts), seed, 1,
        [&jobs, seconds](sim::Simulator &sim,
                         host::SweepRunner &runner) {
            std::vector<std::unique_ptr<workload::FioWorkload>>
                running;
            for (size_t j = 0; j < jobs.size(); ++j) {
                JobSpec js = jobs[j];
                const auto cg =
                    runner.addWorkload(js.name, js.weight);
                js.fio.offsetBase = j << 40;
                running.push_back(
                    std::make_unique<workload::FioWorkload>(
                        sim, runner.layer(), cg, js.fio));
                running.back()->start();
            }
            sim.runUntil(
                static_cast<sim::Time>(seconds * sim::kSec));
        },
        [&fraction](host::SweepRunner &runner, size_t lane,
                    size_t) {
            if (const host::FusedObserver *obs =
                    runner.fusedObserver())
                fraction = obs->fusedFraction();
            LaneRow row;
            const auto &cgs = runner.workloadCgroups();
            for (const auto &named : cgs) {
                const blk::CgroupIoStats &st =
                    runner.laneLayer(lane).stats(named.second);
                row.reads += st.reads;
                row.writes += st.writes;
            }
            if (!cgs.empty()) {
                const stat::Histogram &lat =
                    runner.laneLayer(lane)
                        .stats(cgs.front().second)
                        .totalLatency;
                row.p50Us =
                    static_cast<double>(lat.quantile(0.50)) / 1e3;
                row.p99Us =
                    static_cast<double>(lat.quantile(0.99)) / 1e3;
            }
            return row;
        });

    // Fast-path occupancy timeline from the generator's stream.
    struct FusedPeriod
    {
        sim::Time time = 0;
        unsigned fused = 0;
        unsigned diverged = 0;
    };
    std::vector<FusedPeriod> periods;
    for (const stat::Record &r : ring.records()) {
        if (r.source != "sweep") {
            if (r.source != "iocost" && r.source != "wb" &&
                r.source != "device" && r.source != "blk")
                warnUnknownSource(r.source, r.key);
            continue;
        }
        if (periods.empty() || periods.back().time != r.time) {
            periods.emplace_back();
            periods.back().time = r.time;
        }
        if (r.key == "fused_lanes")
            periods.back().fused = static_cast<unsigned>(r.value);
        else if (r.key == "diverged_lanes")
            periods.back().diverged =
                static_cast<unsigned>(r.value);
    }
    if (periods.empty()) {
        std::printf("no fused-observer telemetry (K=1 sweeps and "
                    "iocost-free sweeps run the plain path)\n");
    } else {
        if (every == 0) {
            every = static_cast<unsigned>(
                std::max<size_t>(1, periods.size() / 32));
        }
        std::printf("fused fast-path occupancy ('#' fused lane, "
                    "'.' diverged):\n");
        for (size_t i = 0; i < periods.size(); i += every) {
            const FusedPeriod &p = periods[i];
            std::printf("[%8.3fs] %2u/%2u |", sim::toSeconds(p.time),
                        p.fused, p.fused + p.diverged);
            for (unsigned k = 0; k < p.fused; ++k)
                std::putchar('#');
            for (unsigned k = 0; k < p.diverged; ++k)
                std::putchar('.');
            std::printf("|\n");
        }
        if (fraction >= 0.0) {
            std::printf("fused path carried %.1f%% of lane "
                        "submissions over %zu planning periods\n",
                        100.0 * fraction, periods.size());
        }
    }

    std::printf("%-40s %10s %10s %9s %9s\n", "config", "reads",
                "writes", "p50us", "p99us");
    for (size_t c = 0; c < rows.size(); ++c) {
        std::printf("%-40s %10llu %10llu %9.0f %9.0f\n",
                    specs[c].c_str(),
                    static_cast<unsigned long long>(rows[c].reads),
                    static_cast<unsigned long long>(
                        rows[c].writes),
                    rows[c].p50Us, rows[c].p99Us);
    }

    if (!out_path.empty()) {
        stat::JsonlSink out(out_path);
        if (!out.ok())
            sim::fatal("cannot write " + out_path);
        for (const stat::Record &r : ring.records())
            out.emit(r);
        out.flush();
        std::printf("wrote %zu records to %s\n",
                    ring.records().size(), out_path.c_str());
    }
    return 0;
}

/** Render a streaming-aggregate view (from a run or a file). */
void
renderAggregate(const fleet::AggregateView &view)
{
    std::printf("fleet aggregate: hosts=%u days=%u host-days=%llu "
                "(run with jobs=%u shards=%u)\n",
                view.hosts, view.days,
                static_cast<unsigned long long>(view.hostDays),
                view.jobs, view.shards);
    std::printf("%-10s %12s %9s %9s %9s %12s %9s %9s %9s\n",
                "controller", "fetch-done", "p50ms", "p99ms",
                "meanms", "clean-done", "p50ms", "p99ms",
                "meanms");
    const char *names[2] = {"iolatency", "iocost"};
    for (unsigned c = 0; c < 2; ++c) {
        const auto &s = view.ctl[c];
        std::printf(
            "%-10s %12llu %9.2f %9.2f %9.2f %12llu %9.2f %9.2f "
            "%9.2f\n",
            names[c],
            static_cast<unsigned long long>(s.fetchCount),
            s.fetchP50Ms, s.fetchP99Ms, s.fetchMeanMs,
            static_cast<unsigned long long>(s.cleanupCount),
            s.cleanupP50Ms, s.cleanupP99Ms, s.cleanupMeanMs);
    }
    std::printf("%5s %10s %10s %10s %10s\n", "day", "on-iocost",
                "fetchfail", "cleanfail", "attempts");
    for (const auto &d : view.perDay) {
        std::printf("%5u %9.0f%% %10u %10u %10u\n", d.day,
                    100.0 * d.fractionOnIoCost, d.fetchFailures,
                    d.cleanupFailures, d.fetchAttempts);
    }
}

/** Extract the value of a top-level "type":"..." key, or "". */
std::string
sniffDocType(const std::string &line)
{
    const size_t key = line.find("\"type\":\"");
    if (key == std::string::npos)
        return "";
    const size_t begin = key + 8; // past "type":"
    const size_t end = line.find('"', begin);
    if (end == std::string::npos)
        return "";
    return line.substr(begin, end - begin);
}

/**
 * What-if diff stream (iocost_whatif output): one summary row per
 * document — the query, the branch point, and the headline delta
 * (per-job IO count and p99 shifts pulled from the delta block).
 */
int
renderWhatifStream(const std::string &text)
{
    uint64_t diffs = 0, errors = 0, other = 0;
    std::printf("%-52s %10s %14s %12s\n", "query", "from(ms)",
                "delta-ios", "delta-p99(us)");
    size_t pos = 0;
    while (pos < text.size()) {
        size_t eol = text.find('\n', pos);
        if (eol == std::string::npos)
            eol = text.size();
        const std::string line = text.substr(pos, eol - pos);
        pos = eol + 1;
        if (line.empty())
            continue;
        const std::string type = sniffDocType(line);
        if (type == "whatif_error") {
            ++errors;
            continue;
        }
        if (type != "whatif_diff") {
            ++other;
            continue;
        }
        ++diffs;
        std::string query = "?";
        const size_t qkey = line.find("\"query\":\"");
        if (qkey != std::string::npos) {
            const size_t begin = qkey + 9; // past "query":"
            const size_t end = line.find('"', begin);
            if (end != std::string::npos)
                query = line.substr(begin, end - begin);
        }
        double from_ms = 0;
        long long from_ns = 0;
        const size_t fkey = line.find("\"from_ns\":");
        if (fkey != std::string::npos &&
            std::sscanf(line.c_str() + fkey, "\"from_ns\":%lld",
                        &from_ns) == 1)
            from_ms = static_cast<double>(from_ns) / 1e6;
        // Headline deltas: sum of per-job ios and the largest
        // per-job p99 shift from the delta block.
        long long ios_total = 0, p99_max = 0;
        bool have_delta = false;
        const size_t dkey = line.find("\"delta\":");
        if (dkey != std::string::npos) {
            size_t jp = dkey;
            for (;;) {
                jp = line.find("{\"name\":", jp);
                if (jp == std::string::npos)
                    break;
                long long ios = 0, p99 = 0;
                const size_t ik = line.find("\"ios\":", jp);
                if (ik != std::string::npos)
                    std::sscanf(line.c_str() + ik,
                                "\"ios\":%lld", &ios);
                const size_t pk = line.find("\"p99_ns\":", jp);
                if (pk != std::string::npos)
                    std::sscanf(line.c_str() + pk,
                                "\"p99_ns\":%lld", &p99);
                ios_total += ios;
                if (std::llabs(p99) > std::llabs(p99_max))
                    p99_max = p99;
                have_delta = true;
                jp = line.find('}', jp);
                if (jp == std::string::npos)
                    break;
            }
        }
        if (have_delta) {
            std::printf("%-52s %10.0f %+14lld %+12.0f\n",
                        query.c_str(), from_ms, ios_total,
                        static_cast<double>(p99_max) / 1e3);
        } else {
            std::printf("%-52s %10.0f %14s %12s\n", query.c_str(),
                        from_ms, "-", "-");
        }
    }
    std::printf("whatif stream: %llu diffs, %llu errors",
                static_cast<unsigned long long>(diffs),
                static_cast<unsigned long long>(errors));
    if (other) {
        std::printf(", %llu other documents skipped",
                    static_cast<unsigned long long>(other));
    }
    std::printf("\n");
    return 0;
}

/**
 * --in FILE: render a previously written file. The format is
 * sniffed: streaming-aggregate JSON (the fleet engine output), a
 * sweep document, a what-if diff stream, or the legacy per-host
 * JSONL replay stream. Any other typed JSON document is a clean
 * error naming the unrecognized type.
 */
int
runFleetIn(const std::string &in_path)
{
    FILE *f = std::fopen(in_path.c_str(), "r");
    if (!f)
        sim::fatal("cannot read " + in_path);
    std::string text;
    char buf[65536];
    size_t n;
    while ((n = std::fread(buf, 1, sizeof(buf), f)) > 0)
        text.append(buf, n);
    std::fclose(f);

    // Sweep documents embed per-config aggregates (each with its
    // own marker), so sniff the sweep wrapper first.
    if (const auto sweep = fleet::readSweepJson(text)) {
        std::printf("fleet sweep: %zu configs\n",
                    sweep->entries.size());
        for (size_t c = 0; c < sweep->entries.size(); ++c) {
            std::printf("\nconfig[%zu]: %s\n", c,
                        c < sweep->labels.size()
                            ? sweep->labels[c].c_str()
                            : "?");
            renderAggregate(sweep->entries[c]);
        }
        return 0;
    }
    if (const auto view = fleet::readAggregateJson(text)) {
        renderAggregate(*view);
        return 0;
    }

    // Typed line-oriented documents: the first typed line decides.
    {
        size_t first_eol = text.find('\n');
        if (first_eol == std::string::npos)
            first_eol = text.size();
        const std::string doc_type =
            sniffDocType(text.substr(0, first_eol));
        if (doc_type == "whatif_diff" || doc_type == "whatif_error")
            return renderWhatifStream(text);
        if (!doc_type.empty()) {
            sim::fatal(in_path + ": unknown document type \"" +
                       doc_type +
                       "\" (expected a fleet aggregate, a sweep "
                       "document, a whatif_diff stream, or "
                       "per-host JSONL)");
        }
    }

    // Legacy per-host JSONL: one record per telemetry sample,
    // prefixed {"day":D,"host":H,...}. Summarize coverage per day.
    std::map<unsigned, uint64_t> day_records;
    std::map<unsigned, std::map<unsigned, bool>> day_hosts;
    uint64_t total = 0, bad_lines = 0;
    size_t pos = 0;
    while (pos < text.size()) {
        size_t eol = text.find('\n', pos);
        if (eol == std::string::npos)
            eol = text.size();
        const std::string line = text.substr(pos, eol - pos);
        pos = eol + 1;
        if (line.empty())
            continue;
        unsigned day = 0, host = 0;
        if (std::sscanf(line.c_str(), "{\"day\":%u,\"host\":%u,",
                        &day, &host) == 2) {
            ++day_records[day];
            day_hosts[day][host] = true;
            ++total;
        } else {
            ++bad_lines;
        }
    }
    if (total == 0) {
        sim::fatal(in_path +
                   ": neither a fleet aggregate JSON nor per-host "
                   "JSONL");
    }
    std::printf("fleet per-host replay (legacy JSONL): %llu "
                "records, %zu days\n",
                static_cast<unsigned long long>(total),
                day_records.size());
    if (bad_lines) {
        std::printf("  (%llu unrecognized lines skipped)\n",
                    static_cast<unsigned long long>(bad_lines));
    }
    std::printf("%5s %10s %10s\n", "day", "hosts", "records");
    for (const auto &[day, count] : day_records) {
        std::printf("%5u %10zu %10llu\n", day,
                    day_hosts[day].size(),
                    static_cast<unsigned long long>(count));
    }
    return 0;
}

int
runFleet(const std::string &scenario, fleet::FleetConfig cfg,
         unsigned jobs, unsigned shards,
         const std::string &out_path)
{
    // A spec-form scenario (inline or @file) runs the streaming
    // engine: constant memory, aggregate rendering.
    if (!scenario.empty() && scenario != "fig18" &&
        scenario != "fig19") {
        std::string spec_text = scenario;
        if (scenario[0] == '@') {
            FILE *f = std::fopen(scenario.c_str() + 1, "r");
            if (!f)
                sim::fatal("cannot read scenario file " +
                           scenario.substr(1));
            spec_text.clear();
            char buf[4096];
            size_t n;
            while ((n = std::fread(buf, 1, sizeof(buf), f)) > 0)
                spec_text.append(buf, n);
            std::fclose(f);
        } else if (scenario.find('=') == std::string::npos) {
            sim::fatal("unknown --scenario (fig18|fig19, a "
                       "FleetScenario spec, or @file): " +
                       scenario);
        }
        fleet::FleetScenario sc;
        try {
            sc = fleet::FleetScenario::parse(spec_text);
        } catch (const std::invalid_argument &err) {
            sim::fatal(err.what());
        }
        if (!cfg.faults.empty())
            sc.faults = cfg.faults;
        fleet::RunOptions run_opts;
        run_opts.jobs = jobs;
        run_opts.shards = shards;
        std::printf("fleet scenario: %s\n", sc.canonical().c_str());
        if (!sc.sweep.empty()) {
            std::vector<fleet::FleetAggregate> aggs;
            try {
                aggs = fleet::FleetSim::runScenarioSweep(sc,
                                                         run_opts);
            } catch (const std::exception &err) {
                sim::fatal(err.what());
            }
            fleet::SweepView view;
            view.labels = sc.sweep;
            for (size_t c = 0; c < aggs.size(); ++c) {
                view.entries.push_back(
                    fleet::AggregateView::from(aggs[c]));
                std::printf("\nconfig[%zu]: %s\n", c,
                            sc.sweep[c].c_str());
                renderAggregate(view.entries.back());
            }
            if (!out_path.empty()) {
                FILE *out = std::fopen(out_path.c_str(), "w");
                if (!out)
                    sim::fatal("cannot write " + out_path);
                fleet::writeSweepJson(view, out);
                std::fclose(out);
                std::printf("wrote sweep to %s\n",
                            out_path.c_str());
            }
            return 0;
        }
        const fleet::FleetAggregate agg =
            fleet::FleetSim::runScenario(sc, run_opts);
        const auto view = fleet::AggregateView::from(agg);
        renderAggregate(view);
        if (!out_path.empty()) {
            FILE *out = std::fopen(out_path.c_str(), "w");
            if (!out)
                sim::fatal("cannot write " + out_path);
            fleet::writeAggregateJson(view, out);
            std::fclose(out);
            std::printf("wrote aggregate to %s\n",
                        out_path.c_str());
        }
        return 0;
    }

    if (scenario == "fig18") {
        cfg.seed = 1818;
    } else if (scenario == "fig19") {
        cfg.seed = 1919;
    }
    cfg.telemetry = true;

    std::printf("fleet replay: scenario=%s hosts=%u days=%u "
                "jobs=%u seed=%llu\n",
                scenario.empty() ? "custom" : scenario.c_str(),
                cfg.hosts, cfg.days, jobs,
                static_cast<unsigned long long>(cfg.seed));

    std::vector<fleet::HostDayOutcome> outcomes;
    fleet::RunOptions run_opts;
    run_opts.jobs = jobs;
    run_opts.shards = shards;
    const fleet::FleetAggregate agg = fleet::FleetSim::runScenario(
        fleet::scenarioFromConfig(cfg), run_opts, &outcomes);
    const auto &days = agg.days;

    FILE *out = stdout;
    if (!out_path.empty()) {
        out = std::fopen(out_path.c_str(), "w");
        if (out == nullptr)
            sim::fatal("cannot write " + out_path);
    }

    // Serialize the outcome grid in (day, host, time) order: that
    // is already the natural record order inside each slice, and
    // the grid itself is (day, host)-indexed, so the byte stream
    // is independent of the worker count.
    uint64_t written = 0;
    for (unsigned day = 0; day < cfg.days; ++day) {
        for (unsigned h = 0; h < cfg.hosts; ++h) {
            const auto &o =
                outcomes[static_cast<uint64_t>(day) * cfg.hosts +
                         h];
            for (const stat::Record &r : o.records) {
                std::fprintf(out, "{\"day\":%u,\"host\":%u,%s}\n",
                             day, h,
                             stat::toJsonlFields(r).c_str());
                ++written;
            }
        }
    }
    if (out != stdout) {
        std::fclose(out);
        std::printf("wrote %llu records to %s\n",
                    static_cast<unsigned long long>(written),
                    out_path.c_str());
    }

    std::printf("%5s %10s %10s %10s\n", "day", "on-iocost",
                "fetchfail", "cleanfail");
    for (const auto &d : days) {
        std::printf("%5u %9.0f%% %10u %10u\n", d.day,
                    100.0 * d.fractionOnIoCost, d.fetchFailures,
                    d.cleanupFailures);
    }
    return 0;
}

} // namespace

int
main(int argc, char **argv)
{
    std::string device_name = "newgen";
    std::string controller = "iocost";
    std::string model_line, qos_line, out_path, scenario;
    std::string faults_spec, sweep_arg;
    double seconds = 5.0;
    uint64_t seed = 42;
    uint64_t pagecache_bytes = 0;
    double dirty_ratio_pct = 0.0;
    unsigned every = 0;
    bool detail = false;
    std::vector<JobSpec> jobs;
    bool fleet_mode = false;
    fleet::FleetConfig fleet_cfg;
    // Replay default: a slice of the fleet large enough to cover
    // both host generations and the full migration window without
    // generating hundreds of megabytes of JSONL.
    fleet_cfg.hosts = 12;
    fleet_cfg.days = 8;
    fleet_cfg.migrationStartDay = 2;
    fleet_cfg.migrationEndDay = 6;
    unsigned fleet_jobs = 1;
    unsigned fleet_shards = 0;
    std::string in_path;

    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        auto next = [&]() -> std::string {
            if (i + 1 >= argc)
                sim::fatal(arg + " needs a value");
            return argv[++i];
        };
        if (arg == "--device") {
            device_name = next();
        } else if (arg == "--controller") {
            controller = next();
        } else if (arg == "--sweep") {
            sweep_arg = next();
        } else if (arg == "--model") {
            model_line = next();
        } else if (arg == "--qos") {
            qos_line = next();
        } else if (arg == "--faults") {
            faults_spec = next();
        } else if (arg == "--seconds") {
            seconds = std::stod(next());
        } else if (arg == "--seed") {
            seed = std::stoull(next());
        } else if (arg == "--job") {
            jobs.push_back(parseJob(next()));
        } else if (arg == "--pagecache") {
            const auto v = host::parseSize(next());
            if (!v)
                sim::fatal("bad --pagecache size");
            pagecache_bytes = *v;
        } else if (arg == "--dirty-ratio") {
            dirty_ratio_pct = std::stod(next());
            if (dirty_ratio_pct < 0.0 || dirty_ratio_pct > 100.0)
                sim::fatal("--dirty-ratio must be in [0, 100]");
        } else if (arg == "--every") {
            every = static_cast<unsigned>(std::stoul(next()));
        } else if (arg == "--detail") {
            detail = true;
        } else if (arg == "--out") {
            out_path = next();
        } else if (arg == "--fleet") {
            fleet_mode = true;
        } else if (arg == "--scenario") {
            scenario = next();
        } else if (arg == "--hosts") {
            fleet_cfg.hosts =
                static_cast<unsigned>(std::stoul(next()));
        } else if (arg == "--days") {
            fleet_cfg.days =
                static_cast<unsigned>(std::stoul(next()));
        } else if (arg == "--jobs") {
            fleet_jobs =
                static_cast<unsigned>(std::stoul(next()));
        } else if (arg == "--shards") {
            fleet_shards =
                static_cast<unsigned>(std::stoul(next()));
        } else if (arg == "--in") {
            in_path = next();
        } else if (arg == "--help" || arg == "-h") {
            std::printf("see the header of tools/iocost_mon.cc\n");
            return 0;
        } else {
            sim::fatal("unknown flag: " + arg);
        }
    }

    // Validate the fault spec up front so both modes reject a bad
    // --faults string before any simulation work happens.
    if (!faults_spec.empty()) {
        try {
            (void)sim::FaultPlan::parse(faults_spec);
        } catch (const std::invalid_argument &err) {
            sim::fatal(err.what());
        }
    }

    if (!in_path.empty()) {
        // Reader mode sniffs the document type itself, so --fleet
        // is accepted but no longer required.
        (void)fleet_mode;
        return runFleetIn(in_path);
    }
    if (fleet_mode) {
        fleet_cfg.faults = faults_spec;
        return runFleet(scenario, fleet_cfg, fleet_jobs,
                        fleet_shards, out_path);
    }
    if (!sweep_arg.empty()) {
        for (const JobSpec &job : jobs) {
            if (job.buffered) {
                sim::fatal("buffered jobs are not supported under "
                           "--sweep (the shadow-lane engine has no "
                           "page cache)");
            }
        }
        return runHostSweep(device_name, sweep_arg, model_line,
                            faults_spec, seconds, seed,
                            std::move(jobs), every, out_path);
    }
    return runSingleHost(device_name, controller, model_line,
                         qos_line, faults_spec, seconds, seed,
                         std::move(jobs), pagecache_bytes,
                         dirty_ratio_pct, every, detail, out_path);
}
