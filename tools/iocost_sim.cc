/**
 * @file
 * iocost_sim — command-line scenario driver.
 *
 * Assembles a host (device + controller + cgroup hierarchy), runs a
 * set of fio-style jobs described on the command line, and prints
 * per-job throughput/latency plus controller state. Accepts kernel-
 * format io.cost.model / io.cost.qos strings, so configurations can
 * be copied verbatim from (or to) a real machine.
 *
 * Usage:
 *   iocost_sim [--device oldgen|newgen|enterprise|hdd|gp3|io2|
 *               pd-balanced|pd-ssd]
 *              [--controller "<spec>"]  a mechanism name (none,
 *               mq-deadline, kyber, bfq, blk-throttle, iolatency,
 *               iocost) optionally followed by key=value settings —
 *               see controllers::parseControllerSpec, e.g.
 *               "kyber rlat=1000 wlat=8000"
 *              [--model "<io.cost.model line>"]   (default: profile)
 *              [--qos "<io.cost.qos line>"]
 *              [--faults "<spec>"]  deterministic device fault plan
 *               (see sim::FaultPlan::parse), e.g.
 *               "lat@2s+1s=6,err@2s+1s=0.02,timeout=80ms"
 *              [--seconds N] [--seed N]
 *              [--pagecache SIZE]  per-host page cache (K/M/G
 *               suffixes); auto-set to 512M when any --job is
 *               buffered. Enables buffered jobs and writeback.
 *              [--dirty-ratio PCT]  hard dirty wall as a percent of
 *               the page cache (background threshold at half)
 *              [--job name:weight=W:depth=D:bs=B:rw=read|write|mixed
 *                         :pattern=rand|seq[:rate=R]
 *                         [:buffered=1][:fsync=N][:span=BYTES]] ...
 *               buffered=1 routes the job through the page cache
 *               (writes dirty pages, reads hit/miss the cache);
 *               fsync=N adds an fsync barrier every N writes
 *              [--whatif '{"q":...}']  one-shot what-if query
 *               against the scenario the flags above describe (see
 *               whatif/query.hh for the JSON grammar); prints one
 *               whatif_diff document and exits. iocost_whatif
 *               serves the same queries as a concurrent service.
 *              [--sweep "spec1;spec2;..."]  multi-config sweep:
 *               run every controller spec against the SAME workload
 *               and device-model event stream (common random
 *               numbers — one generator, K shadow controller
 *               lanes). ';' separates configs; ',' within a config
 *               doubles as a token separator, so
 *               "iocost,min=25;iocost,min=50" is a two-config
 *               sweep. Mutually exclusive with --controller;
 *               --model/--qos apply to every config. --jobs
 *               partitions the configs across worker threads
 *               (per-config output is byte-identical for any value).
 *
 * Fleet mode runs the §4.8 migration Monte-Carlo instead of a single
 * host, through the sharded streaming engine (results are
 * byte-identical for any --jobs/--shards value):
 *   iocost_sim --fleet [--hosts N] [--days N] [--jobs N] [--seed N]
 *              [--shards N]
 *              [--scenario "<FleetScenario spec>"|@scenario.txt]
 *                 full scenario grammar (device/workload mixes,
 *                 staged migration) — see fleet/fleet_scenario.hh;
 *                 overrides --hosts/--days/--seed
 *              [--sweep "spec1;spec2;..."]  paired-CRN sweep: every
 *                 host-day is run once per config with the same
 *                 host-day seed; one aggregate per config
 *                 (equivalent to the scenario `sweep=` key)
 *              [--out agg.json]  write the streaming-aggregate JSON
 *                 (readable by iocost_mon --fleet --in); under
 *                 --sweep, the multi-config sweep document
 *
 * Example:
 *   iocost_sim --device oldgen --controller iocost --seconds 10 \
 *     --job web:weight=200:depth=32 --job batch:weight=100:depth=32
 */

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <stdexcept>
#include <string>
#include <vector>

#include "core/config_parse.hh"
#include "fleet/fleet_sim.hh"
#include "host/config.hh"
#include "host/device_factory.hh"
#include "host/host.hh"
#include "host/sweep.hh"
#include "sim/logging.hh"
#include "whatif/query.hh"
#include "whatif/scenario.hh"
#include "whatif/service.hh"
#include "workload/buffered_io.hh"
#include "workload/fio_workload.hh"

namespace {

using namespace iocost;

struct JobSpec
{
    std::string name = "job";
    uint32_t weight = 100;
    workload::FioConfig fio;
    /** Route through the page cache instead of the block layer. */
    bool buffered = false;
    uint32_t fsyncEvery = 0;
    uint64_t spanBytes = 0;
};

/** Parse "name:key=value:..." into a JobSpec. */
JobSpec
parseJob(const std::string &arg)
{
    JobSpec job;
    size_t pos = 0;
    bool first = true;
    while (pos <= arg.size()) {
        const size_t colon = arg.find(':', pos);
        const std::string part =
            arg.substr(pos, colon == std::string::npos
                                ? std::string::npos
                                : colon - pos);
        if (first) {
            job.name = part;
            first = false;
        } else {
            const size_t eq = part.find('=');
            if (eq == std::string::npos)
                sim::fatal("bad job attribute: " + part);
            const std::string key = part.substr(0, eq);
            const std::string value = part.substr(eq + 1);
            if (key == "weight") {
                job.weight =
                    static_cast<uint32_t>(std::stoul(value));
            } else if (key == "depth") {
                job.fio.iodepth =
                    static_cast<unsigned>(std::stoul(value));
            } else if (key == "bs") {
                job.fio.blockSize =
                    static_cast<uint32_t>(std::stoul(value));
            } else if (key == "rw") {
                job.fio.readFraction = value == "read"    ? 1.0
                                       : value == "write" ? 0.0
                                                          : 0.5;
            } else if (key == "pattern") {
                job.fio.randomFraction =
                    value == "seq" ? 0.0 : 1.0;
            } else if (key == "rate") {
                job.fio.arrival = workload::Arrival::Rate;
                job.fio.ratePerSec = std::stod(value);
            } else if (key == "buffered") {
                job.buffered = std::stoul(value) != 0;
            } else if (key == "fsync") {
                job.fsyncEvery =
                    static_cast<uint32_t>(std::stoul(value));
            } else if (key == "span") {
                job.spanBytes = std::stoull(value);
            } else {
                sim::fatal("unknown job key: " + key);
            }
        }
        if (colon == std::string::npos)
            break;
        pos = colon + 1;
    }
    return job;
}

/** host::makeNamedDevice with the CLI's exit-on-error behaviour. */
std::unique_ptr<blk::BlockDevice>
makeDevice(const std::string &name, sim::Simulator &sim,
           core::LinearModelConfig &model_out)
{
    try {
        return host::makeNamedDevice(name, sim, &model_out);
    } catch (const std::invalid_argument &err) {
        sim::fatal(err.what());
    }
}

} // namespace

int
main(int argc, char **argv)
{
    std::string device_name = "newgen";
    std::string controller = "iocost";
    bool controller_set = false;
    std::string sweep_arg;
    std::string model_line, qos_line, faults_spec;
    double seconds = 10.0;
    uint64_t seed = 42;
    uint64_t pagecache_bytes = 0;
    double dirty_ratio_pct = 0.0;
    std::vector<JobSpec> jobs;
    std::vector<std::string> job_args;
    std::string whatif_arg;
    bool fleet_mode = false;
    fleet::FleetConfig fleet_cfg;
    unsigned fleet_jobs = 1;
    unsigned fleet_shards = 0;
    std::string scenario_arg, out_path;

    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        auto next = [&]() -> std::string {
            if (i + 1 >= argc)
                sim::fatal(arg + " needs a value");
            return argv[++i];
        };
        if (arg == "--device") {
            device_name = next();
        } else if (arg == "--controller") {
            controller = next();
            controller_set = true;
        } else if (arg == "--sweep") {
            sweep_arg = next();
        } else if (arg == "--model") {
            model_line = next();
        } else if (arg == "--qos") {
            qos_line = next();
        } else if (arg == "--faults") {
            faults_spec = next();
        } else if (arg == "--seconds") {
            seconds = std::stod(next());
        } else if (arg == "--seed") {
            seed = std::stoull(next());
        } else if (arg == "--pagecache") {
            const auto v = host::parseSize(next());
            if (!v)
                sim::fatal("bad --pagecache size");
            pagecache_bytes = *v;
        } else if (arg == "--dirty-ratio") {
            dirty_ratio_pct = std::stod(next());
            if (dirty_ratio_pct < 0.0 || dirty_ratio_pct > 100.0)
                sim::fatal("--dirty-ratio must be in [0, 100]");
        } else if (arg == "--job") {
            job_args.push_back(next());
            jobs.push_back(parseJob(job_args.back()));
        } else if (arg == "--whatif") {
            whatif_arg = next();
        } else if (arg == "--fleet") {
            fleet_mode = true;
        } else if (arg == "--hosts") {
            fleet_cfg.hosts =
                static_cast<unsigned>(std::stoul(next()));
        } else if (arg == "--days") {
            fleet_cfg.days =
                static_cast<unsigned>(std::stoul(next()));
        } else if (arg == "--jobs") {
            fleet_jobs =
                static_cast<unsigned>(std::stoul(next()));
        } else if (arg == "--shards") {
            fleet_shards =
                static_cast<unsigned>(std::stoul(next()));
        } else if (arg == "--scenario") {
            scenario_arg = next();
        } else if (arg == "--out") {
            out_path = next();
        } else if (arg == "--help" || arg == "-h") {
            std::printf("see the header of tools/iocost_sim.cc\n");
            return 0;
        } else {
            sim::fatal("unknown flag: " + arg);
        }
    }
    // Validate the fault spec up front: both modes should reject a
    // bad --faults string before any simulation work happens.
    if (!faults_spec.empty()) {
        try {
            (void)sim::FaultPlan::parse(faults_spec);
        } catch (const std::invalid_argument &err) {
            sim::fatal(err.what());
        }
    }
    if (fleet_mode) {
        fleet::FleetScenario sc;
        if (!scenario_arg.empty()) {
            std::string spec_text = scenario_arg;
            if (scenario_arg[0] == '@') {
                FILE *f = std::fopen(scenario_arg.c_str() + 1, "r");
                if (!f) {
                    sim::fatal("cannot read scenario file " +
                               scenario_arg.substr(1));
                }
                spec_text.clear();
                char buf[4096];
                size_t n;
                while ((n = std::fread(buf, 1, sizeof(buf), f)) >
                       0) {
                    spec_text.append(buf, n);
                }
                std::fclose(f);
            }
            try {
                sc = fleet::FleetScenario::parse(spec_text);
            } catch (const std::invalid_argument &err) {
                sim::fatal(err.what());
            }
            if (!faults_spec.empty())
                sc.faults = faults_spec;
        } else {
            fleet_cfg.seed = seed;
            fleet_cfg.faults = faults_spec;
            sc = fleet::scenarioFromConfig(fleet_cfg);
        }
        fleet::RunOptions run_opts;
        run_opts.jobs = fleet_jobs;
        run_opts.shards = fleet_shards;
        if (!sweep_arg.empty())
            sc.sweep = controllers::splitSpecList(sweep_arg);
        if (!sc.sweep.empty()) {
            std::printf("fleet: %s\n", sc.canonical().c_str());
            std::vector<fleet::FleetAggregate> aggs;
            try {
                aggs = fleet::FleetSim::runScenarioSweep(sc,
                                                         run_opts);
            } catch (const std::exception &err) {
                sim::fatal(err.what());
            }
            std::printf(
                "engine: jobs=%u shards=%u host-days=%llu "
                "x %zu configs\n",
                aggs[0].jobs, aggs[0].shards,
                static_cast<unsigned long long>(aggs[0].hostDays),
                aggs.size());
            std::printf("%-44s %10s %10s %10s %10s\n", "config",
                        "fetchfail", "cleanfail", "fetch-p99",
                        "clean-p99");
            fleet::SweepView view;
            view.labels = sc.sweep;
            for (size_t c = 0; c < aggs.size(); ++c) {
                const auto spec = controllers::parseControllerSpec(
                    sc.sweep[c]);
                const unsigned ctl =
                    spec && spec->name == "iocost"
                        ? fleet::kCtlIoCost
                        : fleet::kCtlIoLatency;
                unsigned ff = 0, cf = 0;
                for (const auto &d : aggs[c].days) {
                    ff += d.fetchFailures;
                    cf += d.cleanupFailures;
                }
                view.entries.push_back(
                    fleet::AggregateView::from(aggs[c]));
                const auto &s = view.entries.back().ctl[ctl];
                std::printf(
                    "%-44s %10u %10u %8.1fms %8.1fms\n",
                    sc.sweep[c].c_str(), ff, cf, s.fetchP99Ms,
                    s.cleanupP99Ms);
            }
            if (!out_path.empty()) {
                FILE *out = std::fopen(out_path.c_str(), "w");
                if (!out)
                    sim::fatal("cannot write " + out_path);
                fleet::writeSweepJson(view, out);
                std::fclose(out);
                std::printf("wrote sweep to %s\n",
                            out_path.c_str());
            }
            return 0;
        }
        std::printf("fleet: %s\n", sc.canonical().c_str());
        const fleet::FleetAggregate agg =
            fleet::FleetSim::runScenario(sc, run_opts);
        std::printf("engine: jobs=%u shards=%u host-days=%llu\n",
                    agg.jobs, agg.shards,
                    static_cast<unsigned long long>(agg.hostDays));
        std::printf("%5s %10s %10s %10s\n", "day", "on-iocost",
                    "fetchfail", "cleanfail");
        for (const auto &d : agg.days) {
            std::printf("%5u %9.0f%% %10u %10u\n", d.day,
                        100.0 * d.fractionOnIoCost,
                        d.fetchFailures, d.cleanupFailures);
        }
        if (!out_path.empty()) {
            FILE *out = std::fopen(out_path.c_str(), "w");
            if (!out)
                sim::fatal("cannot write " + out_path);
            fleet::writeAggregateJson(
                fleet::AggregateView::from(agg), out);
            std::fclose(out);
            std::printf("wrote aggregate to %s\n",
                        out_path.c_str());
        }
        return 0;
    }
    if (!out_path.empty())
        sim::fatal("--out is only meaningful with --fleet");
    if (!scenario_arg.empty())
        sim::fatal("--scenario is only meaningful with --fleet");
    // Buffered jobs need a page cache; default one in when the
    // size was left implicit (mirrors the fleet grammar).
    bool any_buffered = false;
    for (const JobSpec &job : jobs)
        any_buffered = any_buffered || job.buffered;
    if (any_buffered && pagecache_bytes == 0)
        pagecache_bytes = 512ull << 20;
    if (!whatif_arg.empty()) {
        // One-shot what-if: assemble the scenario from the same
        // flags a plain run uses and answer the query with a cold
        // full re-run (no checkpoint machinery; byte-identical to
        // the service's branch-and-replay answer).
        if (!sweep_arg.empty())
            sim::fatal("--whatif and --sweep are mutually "
                       "exclusive");
        whatif::Scenario wsc;
        wsc.device = device_name;
        wsc.controller = controller;
        wsc.model = model_line;
        wsc.qos = qos_line;
        wsc.faults = faults_spec;
        wsc.seconds = seconds;
        wsc.seed = seed;
        wsc.pagecacheBytes = pagecache_bytes;
        wsc.dirtyRatioPct = dirty_ratio_pct;
        wsc.jobs = job_args;
        try {
            wsc.normalize();
            const auto q = whatif::Query::parse(whatif_arg);
            std::printf(
                "%s\n",
                whatif::Service::evaluateCold(wsc, q).c_str());
        } catch (const std::exception &err) {
            sim::fatal(err.what());
        }
        return 0;
    }
    if (jobs.empty()) {
        jobs.push_back(parseJob("web:weight=200:depth=32"));
        jobs.push_back(parseJob("batch:weight=100:depth=32"));
    }
    // Keep jobs in disjoint regions (separate files).
    for (size_t j = 0; j < jobs.size(); ++j)
        jobs[j].fio.offsetBase = j << 40;

    if (!sweep_arg.empty()) {
        if (controller_set) {
            sim::fatal(
                "--sweep and --controller are mutually exclusive");
        }
        if (any_buffered) {
            sim::fatal("buffered jobs are not supported under "
                       "--sweep (the shadow-lane engine has no "
                       "page cache)");
        }
        const std::vector<std::string> sweep_specs =
            controllers::splitSpecList(sweep_arg);
        if (sweep_specs.empty())
            sim::fatal("--sweep: empty config list");
        if (sweep_specs.size() == 1) {
            // Degenerate sweep: the plain single-host path below is
            // byte-identical (and has zero observation overhead).
            controller = sweep_specs[0];
        } else {
            // Device cost model for iocost configs that carry no
            // model keys, computed once from a throwaway probe (the
            // profile cache also ends up warm for every worker).
            core::LinearModelConfig model;
            {
                sim::Simulator probe(seed);
                (void)makeDevice(device_name, probe, model);
            }
            if (!model_line.empty()) {
                const auto parsed = core::parseModelLine(model_line);
                if (!parsed)
                    sim::fatal("bad --model line");
                model = *parsed;
            }
            std::optional<core::QosParams> qos_override;
            if (!qos_line.empty()) {
                qos_override = core::parseQosLine(qos_line);
                if (!qos_override)
                    sim::fatal("bad --qos line");
            }

            host::SweepOptions sopts;
            sopts.specs = sweep_specs;
            sopts.faults = faults_spec;
            sopts.makeDevice = [&](sim::Simulator &s) {
                core::LinearModelConfig scratch;
                return makeDevice(device_name, s, scratch);
            };
            // Same defaulting as the plain path: the device profile
            // and CLI --qos fill whatever each spec line leaves out.
            // Keyed on the spec line only, so results cannot depend
            // on how configs are partitioned across workers.
            sopts.tweakSpec =
                [&](const std::string &line,
                    controllers::ControllerSpec &spec) {
                    if (spec.name != "iocost")
                        return;
                    const std::string rest =
                        controllers::iocostPayload(line);
                    if (!core::parseModelLine(rest)) {
                        spec.iocost.model =
                            core::CostModel::fromConfig(model);
                    }
                    if (!core::parseQosLine(rest)) {
                        spec.iocost.qos.vrateMin = 0.5;
                        spec.iocost.qos.vrateMax = 1.0;
                    }
                    if (qos_override)
                        spec.iocost.qos = *qos_override;
                };

            struct JobOut
            {
                double iops = 0, mbps = 0, p50us = 0, p99us = 0;
            };
            struct ConfigOut
            {
                bool isIocost = false;
                double vrate = 0, periodMs = 0;
                std::vector<JobOut> jobs;
            };

            const auto warmup =
                static_cast<sim::Time>(0.1 * seconds * sim::kSec);
            const auto measure =
                static_cast<sim::Time>(seconds * sim::kSec);

            auto body = [&](sim::Simulator &s,
                            host::SweepRunner &runner) {
                std::vector<std::unique_ptr<workload::FioWorkload>>
                    running;
                for (const JobSpec &job : jobs) {
                    const auto cg =
                        runner.addWorkload(job.name, job.weight);
                    running.push_back(
                        std::make_unique<workload::FioWorkload>(
                            s, runner.layer(), cg, job.fio));
                    running.back()->start();
                }
                s.runUntil(warmup);
                runner.resetStats();
                s.runUntil(warmup + measure);
                for (auto &job : running)
                    job->stop();
            };
            auto collect = [&](host::SweepRunner &runner,
                               size_t lane, size_t) {
                ConfigOut out;
                blk::BlockLayer &layer = runner.laneLayer(lane);
                for (const auto &wc : runner.workloadCgroups()) {
                    const blk::CgroupIoStats &st =
                        layer.stats(wc.second);
                    JobOut jo;
                    jo.iops = static_cast<double>(st.reads +
                                                  st.writes) /
                              seconds;
                    jo.mbps = static_cast<double>(st.readBytes +
                                                  st.writeBytes) /
                              1e6 / seconds;
                    jo.p50us = sim::toMicros(
                        st.totalLatency.quantile(0.5));
                    jo.p99us = sim::toMicros(
                        st.totalLatency.quantile(0.99));
                    out.jobs.push_back(jo);
                }
                if (core::IoCost *ioc = runner.laneIocost(lane)) {
                    out.isIocost = true;
                    out.vrate = ioc->vrate();
                    out.periodMs = sim::toMillis(ioc->period());
                }
                return out;
            };

            std::vector<ConfigOut> results;
            try {
                results = host::runSweep(sopts, seed, fleet_jobs,
                                         body, collect);
            } catch (const std::exception &err) {
                sim::fatal(err.what());
            }

            std::printf(
                "device=%s sweep=%zu configs seconds=%.1f "
                "seed=%llu (common random numbers)\n",
                device_name.c_str(), results.size(), seconds,
                static_cast<unsigned long long>(seed));
            std::printf("io.cost.model: %s\n",
                        core::formatModelLine(model).c_str());
            for (size_t c = 0; c < results.size(); ++c) {
                const ConfigOut &cfg = results[c];
                std::printf("\nconfig[%zu]: %s\n", c,
                            sweep_specs[c].c_str());
                std::printf("%-12s %8s %10s %10s %10s %10s\n",
                            "job", "weight", "IOPS", "MB/s", "p50",
                            "p99");
                for (size_t j = 0; j < cfg.jobs.size(); ++j) {
                    std::printf("%-12s %8u %10.0f %10.1f %8.0fus "
                                "%8.0fus\n",
                                jobs[j].name.c_str(),
                                jobs[j].weight, cfg.jobs[j].iops,
                                cfg.jobs[j].mbps, cfg.jobs[j].p50us,
                                cfg.jobs[j].p99us);
                }
                if (cfg.isIocost) {
                    std::printf("vrate: %.0f%%  (planning period "
                                "%.0fms)\n",
                                100.0 * cfg.vrate, cfg.periodMs);
                }
            }
            return 0;
        }
    }

    sim::Simulator sim(seed);
    core::LinearModelConfig model;
    auto device = makeDevice(device_name, sim, model);

    if (!model_line.empty()) {
        const auto parsed = core::parseModelLine(model_line);
        if (!parsed)
            sim::fatal("bad --model line");
        model = *parsed;
    }

    const auto spec = controllers::parseControllerSpec(controller);
    if (!spec)
        sim::fatal("bad --controller spec: " + controller);

    host::HostOptions opts;
    opts.controller = *spec;
    opts.faults = faults_spec;
    if (pagecache_bytes != 0) {
        opts.enablePageCache = true;
        opts.pageCacheConfig.cacheBytes = pagecache_bytes;
        if (dirty_ratio_pct > 0.0) {
            opts.pageCacheConfig.dirtyRatio =
                dirty_ratio_pct / 100.0;
            opts.pageCacheConfig.dirtyBackgroundRatio =
                dirty_ratio_pct / 200.0;
        }
    }
    // The iocost settings a bare mechanism name leaves at their
    // struct defaults come from the device profile and the
    // --model/--qos kernel-format lines instead; a spec line that
    // carries its own model/qos keys wins over the profile.
    const std::string spec_rest =
        controllers::iocostPayload(controller);
    if (!core::parseModelLine(spec_rest)) {
        opts.controller.iocost.model =
            core::CostModel::fromConfig(model);
    }
    if (!core::parseQosLine(spec_rest)) {
        opts.controller.iocost.qos.vrateMin = 0.5;
        opts.controller.iocost.qos.vrateMax = 1.0;
    }
    if (!qos_line.empty()) {
        const auto parsed = core::parseQosLine(qos_line);
        if (!parsed)
            sim::fatal("bad --qos line");
        opts.controller.iocost.qos = *parsed;
    }

    host::Host host(sim, std::move(device), opts);

    std::printf("device=%s controller=%s seconds=%.1f seed=%llu\n",
                device_name.c_str(), spec->name.c_str(), seconds,
                static_cast<unsigned long long>(seed));
    std::printf("io.cost.model: %s\n",
                core::formatModelLine(model).c_str());
    if (spec->name == "iocost") {
        std::printf("io.cost.qos:   %s\n",
                    core::formatQosLine(opts.controller.iocost.qos)
                        .c_str());
    }

    // One slot per job: direct jobs run FioWorkloads, buffered jobs
    // run BufferedWorkloads through the host's page cache.
    std::vector<std::unique_ptr<workload::FioWorkload>> running(
        jobs.size());
    std::vector<std::unique_ptr<workload::BufferedWorkload>>
        buffered(jobs.size());
    for (size_t j = 0; j < jobs.size(); ++j) {
        JobSpec &spec = jobs[j];
        const auto cg = host.addWorkload(spec.name, spec.weight);
        if (spec.buffered) {
            workload::BufferedConfig bc;
            bc.name = spec.name;
            bc.readFraction = spec.fio.readFraction;
            bc.randomFraction = spec.fio.randomFraction;
            bc.blockSize = spec.fio.blockSize;
            bc.offsetBase = spec.fio.offsetBase;
            bc.fsyncEvery = spec.fsyncEvery;
            bc.depth = spec.fio.iodepth;
            if (spec.spanBytes != 0)
                bc.spanBytes = spec.spanBytes;
            buffered[j] =
                std::make_unique<workload::BufferedWorkload>(
                    sim, host.pageCache(), cg, bc);
            buffered[j]->start();
        } else {
            running[j] =
                std::make_unique<workload::FioWorkload>(
                    sim, host.layer(), cg, spec.fio);
            running[j]->start();
        }
    }

    // Warmup 10%, then measure. Host::resetStats is the one
    // documented stats boundary; workload counters reset with it.
    const auto warmup =
        static_cast<sim::Time>(0.1 * seconds * sim::kSec);
    sim.runUntil(warmup);
    host.resetStats();
    for (auto &job : running) {
        if (job)
            job->resetStats();
    }
    for (auto &job : buffered) {
        if (job)
            job->resetStats();
    }
    sim.runUntil(warmup + static_cast<sim::Time>(
                              seconds * sim::kSec));

    std::printf("\n%-12s %8s %10s %10s %10s %10s\n", "job",
                "weight", "IOPS", "MB/s", "p50", "p99");
    for (size_t j = 0; j < jobs.size(); ++j) {
        const double iops = running[j] ? running[j]->iops()
                                       : buffered[j]->iops();
        const stat::Histogram &lat = running[j]
                                         ? running[j]->latency()
                                         : buffered[j]->latency();
        std::printf(
            "%-12s %8u %10.0f %10.1f %8.0fus %8.0fus\n",
            jobs[j].name.c_str(), jobs[j].weight, iops,
            iops * jobs[j].fio.blockSize / 1e6,
            sim::toMicros(lat.quantile(0.5)),
            sim::toMicros(lat.quantile(0.99)));
    }
    if (pagecache_bytes != 0) {
        const mm::PageCache &pc = host.pageCache();
        std::printf("pagecache: dirty=%.1fM writeback-inflight="
                    "%.1fM cached=%.1fM\n",
                    pc.totalDirty() / 1e6, pc.wbInflight() / 1e6,
                    pc.totalCached() / 1e6);
    }
    if (auto *ioc = host.iocost()) {
        std::printf("\nvrate: %.0f%%  (planning period %.0fms)\n",
                    100.0 * ioc->vrate(),
                    sim::toMillis(ioc->period()));
    }
    return 0;
}
