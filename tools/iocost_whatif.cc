/**
 * @file
 * iocost_whatif — the what-if query service as a CLI.
 *
 * Loads one scenario, builds per-worker replicas with checkpoints
 * at the scenario's marks, then answers line-oriented JSON queries
 * from stdin (one query per line, one "whatif_diff" JSON document
 * per line on stdout, in input order). See whatif/query.hh for the
 * query grammar and whatif/scenario.hh for the scenario grammar.
 *
 * Usage:
 *   iocost_whatif [--scenario "<spec>"|@scenario.txt]
 *                 [--threads N]   worker replicas (0 = hardware
 *                                 concurrency; default 1)
 *                 [--cold]        answer every query with a cold
 *                                 full re-run instead of branching
 *                                 (the determinism gate: output
 *                                 must be byte-identical)
 *
 * Example:
 *   echo '{"q":"weight","cg":"web","value":300,"from":"1s"}' |
 *     iocost_whatif --scenario "device=newgen;seconds=4;marks=1s,2s"
 */

#include <chrono>
#include <cstdint>
#include <cstdio>
#include <deque>
#include <future>
#include <stdexcept>
#include <string>

#include "sim/logging.hh"
#include "whatif/query.hh"
#include "whatif/scenario.hh"
#include "whatif/service.hh"

namespace {

using namespace iocost;

std::string
readSpecArg(const std::string &arg)
{
    if (arg.empty() || arg[0] != '@')
        return arg;
    FILE *f = std::fopen(arg.c_str() + 1, "r");
    if (!f)
        sim::fatal("cannot read scenario file " + arg.substr(1));
    std::string text;
    char buf[4096];
    size_t n;
    while ((n = std::fread(buf, 1, sizeof(buf), f)) > 0)
        text.append(buf, n);
    std::fclose(f);
    return text;
}

} // namespace

int
main(int argc, char **argv)
{
    std::string scenario_arg;
    unsigned threads = 1;
    bool cold = false;

    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        auto next = [&]() -> std::string {
            if (i + 1 >= argc)
                sim::fatal(arg + " needs a value");
            return argv[++i];
        };
        if (arg == "--scenario") {
            scenario_arg = next();
        } else if (arg == "--threads") {
            threads = static_cast<unsigned>(std::stoul(next()));
        } else if (arg == "--cold") {
            cold = true;
        } else if (arg == "--help" || arg == "-h") {
            std::printf("see the header of tools/iocost_whatif.cc\n");
            return 0;
        } else {
            sim::fatal("unknown flag: " + arg);
        }
    }

    whatif::Scenario sc;
    try {
        sc = whatif::Scenario::parse(readSpecArg(scenario_arg));
    } catch (const std::invalid_argument &err) {
        sim::fatal(err.what());
    }
    std::fprintf(stderr, "whatif: scenario %s\n",
                 sc.canonical().c_str());

    whatif::Service service(sc, cold ? 1 : threads);

    // Stream: parse each line as it arrives, enqueue, and flush
    // finished answers in input order as soon as they are ready.
    std::deque<std::future<std::string>> pending;
    auto flushReady = [&](bool block) {
        while (!pending.empty()) {
            if (!block &&
                pending.front().wait_for(std::chrono::seconds(0)) !=
                    std::future_status::ready)
                return;
            std::printf("%s\n", pending.front().get().c_str());
            std::fflush(stdout);
            pending.pop_front();
        }
    };

    char line[65536];
    uint64_t bad_lines = 0;
    while (std::fgets(line, sizeof line, stdin)) {
        std::string text(line);
        while (!text.empty() &&
               (text.back() == '\n' || text.back() == '\r'))
            text.pop_back();
        if (text.empty())
            continue;
        whatif::Query q;
        try {
            q = whatif::Query::parse(text);
        } catch (const std::invalid_argument &err) {
            // Keep output aligned with input: a parse failure is
            // answered in-line too.
            std::promise<std::string> p;
            p.set_value(
                std::string("{\"type\":\"whatif_error\","
                            "\"error\":\"") +
                err.what() + "\"}");
            pending.push_back(p.get_future());
            ++bad_lines;
            flushReady(false);
            continue;
        }
        if (cold) {
            std::promise<std::string> p;
            try {
                p.set_value(
                    whatif::Service::evaluateCold(sc, q));
            } catch (const std::exception &err) {
                p.set_value(
                    std::string("{\"type\":\"whatif_error\","
                                "\"error\":\"") +
                    err.what() + "\"}");
            }
            pending.push_back(p.get_future());
        } else {
            pending.push_back(service.submit(q));
        }
        flushReady(false);
    }
    flushReady(true);
    std::fprintf(stderr,
                 "whatif: done (%llu cache hits, %llu bad lines)\n",
                 static_cast<unsigned long long>(
                     service.cacheHits()),
                 static_cast<unsigned long long>(bad_lines));
    return 0;
}
