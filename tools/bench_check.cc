/**
 * @file
 * bench_check — benchmark threshold gate.
 *
 * Compares a BENCH_kernel.json (the file bench/perf_kernel writes)
 * against a committed threshold file and fails with a readable diff
 * when any tracked quantity crossed its line. The point is to turn
 * the recorded benchmark document into CI state: a PR that
 * regresses the fused sweep speedup, the allocation counts, or the
 * fused-lane fraction fails here with the number, the limit, and
 * the distance, instead of silently committing a worse baseline.
 *
 * Usage:
 *   bench_check [--bench [prefix=]FILE]... [--thresholds FILE]
 *
 * --bench is repeatable; each document is flattened into the same
 * namespace, under `prefix.` when one is given. With no --bench the
 * gate loads BENCH_kernel.json (unprefixed) plus BENCH_fleet.json
 * under `fleet_doc`, with tools/bench_thresholds.txt, resolved from
 * the working directory (ctest runs this from the repository root,
 * against the committed benchmark documents).
 *
 * Arrays flatten to index paths (`fleet_doc.scales.0.hosts`). A
 * constraint whose path exists but holds JSON null is SKIPped with
 * a note — null means "not measured on this machine" (e.g.
 * parallel_speedup on a single-hardware-thread box), which is not a
 * regression. A path absent from every document still FAILs: a
 * renamed or dropped metric must not silently pass its gate.
 *
 * Threshold grammar — one constraint per line, '#' comments:
 *   <dotted.path> >= <number>
 *   <dotted.path> <= <number>
 *   <dotted.path> == true|false
 *   <dotted.path> >= <dotted.path> * <factor>
 * The path-against-path form expresses relative bounds ("the fused
 * ladder pass regresses at most 5% against the full-lane pass")
 * that stay meaningful when absolute rates move with the machine.
 */

#include <cctype>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <map>
#include <set>
#include <string>
#include <utility>
#include <vector>

namespace {

/**
 * Flatten the benchmark document into dotted-path -> value. A
 * deliberately small recursive-descent parser for the subset
 * perf_kernel emits: objects, string keys, numbers, true/false,
 * null (skipped). Anything else is a parse error — the gate must
 * not silently pass on a malformed document.
 */
class FlatJson
{
  public:
    bool
    parse(const std::string &text)
    {
        text_ = text.c_str();
        pos_ = 0;
        end_ = text.size();
        skipWs();
        return object("") && (skipWs(), pos_ == end_);
    }

    const std::map<std::string, double> &values() const
    {
        return values_;
    }

    /** Paths present in the document but holding JSON null. */
    const std::set<std::string> &nulls() const { return nulls_; }

  private:
    bool
    object(const std::string &prefix)
    {
        if (!consume('{'))
            return false;
        skipWs();
        if (consume('}'))
            return true;
        for (;;) {
            skipWs();
            std::string key;
            if (!string(key))
                return false;
            skipWs();
            if (!consume(':'))
                return false;
            skipWs();
            const std::string path =
                prefix.empty() ? key : prefix + "." + key;
            if (!value(path))
                return false;
            skipWs();
            if (consume(','))
                continue;
            return consume('}');
        }
    }

    bool
    array(const std::string &prefix)
    {
        if (!consume('['))
            return false;
        skipWs();
        if (consume(']'))
            return true;
        size_t idx = 0;
        for (;;) {
            skipWs();
            char buf[32];
            std::snprintf(buf, sizeof(buf), "%zu", idx++);
            if (!value(prefix + "." + buf))
                return false;
            skipWs();
            if (consume(','))
                continue;
            return consume(']');
        }
    }

    bool
    value(const std::string &path)
    {
        if (peek() == '{')
            return object(path);
        if (peek() == '[')
            return array(path);
        if (peek() == '"') {
            std::string ignored;
            return string(ignored); // labels are not gated
        }
        if (literal("true")) {
            values_[path] = 1.0;
            return true;
        }
        if (literal("false")) {
            values_[path] = 0.0;
            return true;
        }
        if (literal("null")) {
            // "Not measured on this machine" — recorded so the
            // gate can SKIP (not FAIL) constraints on this path.
            nulls_.insert(path);
            return true;
        }
        char *after = nullptr;
        const double v = std::strtod(text_ + pos_, &after);
        if (after == text_ + pos_)
            return false;
        pos_ = static_cast<size_t>(after - text_);
        values_[path] = v;
        return true;
    }

    bool
    string(std::string &out)
    {
        if (!consume('"'))
            return false;
        out.clear();
        while (pos_ < end_ && text_[pos_] != '"')
            out.push_back(text_[pos_++]);
        return consume('"');
    }

    bool
    literal(const char *word)
    {
        const size_t n = std::strlen(word);
        if (pos_ + n <= end_ &&
            std::memcmp(text_ + pos_, word, n) == 0) {
            pos_ += n;
            return true;
        }
        return false;
    }

    char peek() const { return pos_ < end_ ? text_[pos_] : '\0'; }

    bool
    consume(char c)
    {
        if (peek() != c)
            return false;
        ++pos_;
        return true;
    }

    void
    skipWs()
    {
        while (pos_ < end_ &&
               std::isspace(static_cast<unsigned char>(
                   text_[pos_])))
            ++pos_;
    }

    const char *text_ = nullptr;
    size_t pos_ = 0;
    size_t end_ = 0;
    std::map<std::string, double> values_;
    std::set<std::string> nulls_;
};

std::string
readFile(const std::string &path)
{
    FILE *f = std::fopen(path.c_str(), "r");
    if (!f)
        return "";
    std::string out;
    char buf[4096];
    size_t n;
    while ((n = std::fread(buf, 1, sizeof(buf), f)) > 0)
        out.append(buf, n);
    std::fclose(f);
    return out;
}

struct Constraint
{
    std::string lhs;
    std::string op;  // ">=", "<=", "=="
    std::string rhs; // number, "true"/"false", or a dotted path
    double factor = 1.0;
    int line = 0;
};

bool
isNumber(const std::string &tok)
{
    char *after = nullptr;
    (void)std::strtod(tok.c_str(), &after);
    return after != tok.c_str() && *after == '\0';
}

std::vector<Constraint>
parseThresholds(const std::string &text, bool *ok)
{
    std::vector<Constraint> out;
    *ok = true;
    int lineno = 0;
    size_t pos = 0;
    while (pos < text.size()) {
        size_t eol = text.find('\n', pos);
        if (eol == std::string::npos)
            eol = text.size();
        std::string line = text.substr(pos, eol - pos);
        pos = eol + 1;
        ++lineno;
        if (const size_t hash = line.find('#');
            hash != std::string::npos)
            line.resize(hash);
        std::vector<std::string> toks;
        for (size_t i = 0; i < line.size();) {
            while (i < line.size() &&
                   std::isspace(
                       static_cast<unsigned char>(line[i])))
                ++i;
            size_t j = i;
            while (j < line.size() &&
                   !std::isspace(
                       static_cast<unsigned char>(line[j])))
                ++j;
            if (j > i)
                toks.push_back(line.substr(i, j - i));
            i = j;
        }
        if (toks.empty())
            continue;
        Constraint c;
        c.line = lineno;
        const bool with_factor = toks.size() == 5 &&
                                 toks[3] == "*" &&
                                 isNumber(toks[4]);
        if ((toks.size() == 3 || with_factor) &&
            (toks[1] == ">=" || toks[1] == "<=" ||
             toks[1] == "==")) {
            c.lhs = toks[0];
            c.op = toks[1];
            c.rhs = toks[2];
            if (with_factor)
                c.factor = std::strtod(toks[4].c_str(), nullptr);
            out.push_back(std::move(c));
        } else {
            std::fprintf(stderr,
                         "thresholds line %d: cannot parse: %s\n",
                         lineno, line.c_str());
            *ok = false;
        }
    }
    return out;
}

} // namespace

int
main(int argc, char **argv)
{
    // (prefix, path) pairs; empty prefix flattens unprefixed.
    std::vector<std::pair<std::string, std::string>> bench_args;
    std::string thresholds_path = "tools/bench_thresholds.txt";
    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        if (arg == "--bench" && i + 1 < argc) {
            const std::string spec = argv[++i];
            const size_t eq = spec.find('=');
            if (eq != std::string::npos) {
                bench_args.emplace_back(spec.substr(0, eq),
                                        spec.substr(eq + 1));
            } else {
                bench_args.emplace_back("", spec);
            }
        } else if (arg == "--thresholds" && i + 1 < argc) {
            thresholds_path = argv[++i];
        } else {
            std::fprintf(stderr,
                         "usage: bench_check "
                         "[--bench [prefix=]FILE]... "
                         "[--thresholds FILE]\n");
            return 2;
        }
    }
    if (bench_args.empty()) {
        bench_args.emplace_back("", "BENCH_kernel.json");
        bench_args.emplace_back("fleet_doc", "BENCH_fleet.json");
    }

    std::map<std::string, double> vals;
    std::set<std::string> nulls;
    std::string bench_desc;
    for (const auto &[prefix, path] : bench_args) {
        const std::string text = readFile(path);
        if (text.empty()) {
            std::fprintf(stderr, "bench_check: cannot read %s\n",
                         path.c_str());
            return 2;
        }
        FlatJson doc;
        if (!doc.parse(text)) {
            std::fprintf(stderr,
                         "bench_check: %s is not parseable\n",
                         path.c_str());
            return 2;
        }
        const std::string dot = prefix.empty() ? "" : prefix + ".";
        for (const auto &[k, v] : doc.values())
            vals[dot + k] = v;
        for (const std::string &k : doc.nulls())
            nulls.insert(dot + k);
        if (!bench_desc.empty())
            bench_desc += ",";
        bench_desc += path;
    }

    const std::string thr_text = readFile(thresholds_path);
    if (thr_text.empty()) {
        std::fprintf(stderr, "bench_check: cannot read %s\n",
                     thresholds_path.c_str());
        return 2;
    }
    bool thr_ok = true;
    const std::vector<Constraint> constraints =
        parseThresholds(thr_text, &thr_ok);
    if (!thr_ok || constraints.empty()) {
        std::fprintf(stderr,
                     "bench_check: no usable constraints in %s\n",
                     thresholds_path.c_str());
        return 2;
    }

    int failures = 0;
    for (const Constraint &c : constraints) {
        const auto lhs_it = vals.find(c.lhs);
        if (lhs_it == vals.end()) {
            if (nulls.count(c.lhs)) {
                // Present but null: not measured on this machine
                // (e.g. parallel speedup on one hardware thread).
                std::printf("SKIP %-44s null in document "
                            "(not measured; line %d)\n",
                            c.lhs.c_str(), c.line);
                continue;
            }
            std::printf("FAIL %-44s missing from %s (line %d)\n",
                        c.lhs.c_str(), bench_desc.c_str(), c.line);
            ++failures;
            continue;
        }
        const double lhs = lhs_it->second;

        double bound = 0.0;
        std::string bound_desc;
        char buf[96];
        if (c.rhs == "true" || c.rhs == "false") {
            bound = c.rhs == "true" ? 1.0 : 0.0;
            bound_desc = c.rhs;
        } else if (isNumber(c.rhs)) {
            bound = std::strtod(c.rhs.c_str(), nullptr) * c.factor;
            std::snprintf(buf, sizeof(buf), "%g", bound);
            bound_desc = buf;
        } else {
            const auto rhs_it = vals.find(c.rhs);
            if (rhs_it == vals.end()) {
                if (nulls.count(c.rhs)) {
                    std::printf("SKIP %-44s bound %s null in "
                                "document (line %d)\n",
                                c.lhs.c_str(), c.rhs.c_str(),
                                c.line);
                    continue;
                }
                std::printf(
                    "FAIL %-44s bound %s missing (line %d)\n",
                    c.lhs.c_str(), c.rhs.c_str(), c.line);
                ++failures;
                continue;
            }
            bound = rhs_it->second * c.factor;
            std::snprintf(buf, sizeof(buf), "%s * %g = %g",
                          c.rhs.c_str(), c.factor, bound);
            bound_desc = buf;
        }

        bool pass;
        if (c.op == ">=")
            pass = lhs >= bound;
        else if (c.op == "<=")
            pass = lhs <= bound;
        else
            pass = lhs == bound;
        std::printf("%s %-44s %g %s %s\n", pass ? " OK " : "FAIL",
                    c.lhs.c_str(), lhs, c.op.c_str(),
                    bound_desc.c_str());
        failures += pass ? 0 : 1;
    }

    if (failures) {
        std::fprintf(stderr,
                     "bench_check: %d of %zu constraints failed "
                     "(%s vs %s)\n",
                     failures, constraints.size(),
                     bench_desc.c_str(), thresholds_path.c_str());
        return 1;
    }
    std::printf("bench_check: %zu constraints OK\n",
                constraints.size());
    return 0;
}
